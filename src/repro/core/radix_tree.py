"""Radix-Tree (PATRICIA trie) approach to Hamming-select (Section 4.2).

Binary codes are stored in a path-compressed binary prefix trie.  Codes
sharing a prefix share the XOR work for that prefix: search walks the tree
top-down accumulating the Hamming distance of each edge label against the
corresponding query bits and prunes a whole subtree as soon as the
accumulated distance exceeds the threshold (the downward-closure property,
Proposition 1).

The paper uses this index as the stepping stone to the HA-Index and keeps
it as a baseline: it is prefix-sensitive, so codes differing early (the
``t2``/``t7`` example) split into distinct branches and their shared
suffix work is repeated.
"""

from __future__ import annotations

from repro.core.errors import IndexStateError
from repro.core.index_base import HammingIndex, IndexStats


class _RadixNode:
    """A trie node whose incoming edge carries ``label_bits``.

    ``label`` is the edge's bit pattern stored as an int of
    ``label_bits`` bits (most significant bit first, possibly zero bits
    for the root).  Leaves carry the tuple ids of the full code.
    """

    __slots__ = ("label", "label_bits", "children", "ids")

    def __init__(self, label: int, label_bits: int) -> None:
        self.label = label
        self.label_bits = label_bits
        self.children: dict[int, _RadixNode] = {}
        self.ids: list[int] = []


class RadixTreeIndex(HammingIndex):
    """Path-compressed binary trie with Hamming-distance pruning."""

    def __init__(self, code_length: int) -> None:
        super().__init__(code_length)
        self._root = _RadixNode(0, 0)

    # -- maintenance -------------------------------------------------------

    def insert(self, code: int, tuple_id: int) -> None:
        self._check_query(code, 0)
        node = self._root
        depth = 0
        while depth < self._code_length:
            remaining = self._code_length - depth
            branch = _bit(code, depth, self._code_length)
            child = node.children.get(branch)
            if child is None:
                leaf = _RadixNode(_suffix(code, depth, remaining), remaining)
                leaf.ids.append(tuple_id)
                node.children[branch] = leaf
                self._size += 1
                return
            shared = _common_prefix_length(
                _suffix(code, depth, remaining),
                remaining,
                child.label,
                child.label_bits,
            )
            if shared == child.label_bits:
                node = child
                depth += shared
                continue
            # Split the child's edge at the divergence point.
            self._split_edge(node, branch, child, shared)
            node = node.children[branch]
            depth += shared
        node.ids.append(tuple_id)
        self._size += 1

    def _split_edge(
        self,
        parent: _RadixNode,
        branch: int,
        child: _RadixNode,
        shared: int,
    ) -> None:
        upper = _RadixNode(child.label >> (child.label_bits - shared), shared)
        lower_bits = child.label_bits - shared
        lower_label = child.label & ((1 << lower_bits) - 1)
        child.label = lower_label
        child.label_bits = lower_bits
        lower_branch = (lower_label >> (lower_bits - 1)) & 1
        upper.children[lower_branch] = child
        parent.children[branch] = upper

    def delete(self, code: int, tuple_id: int) -> None:
        self._check_query(code, 0)
        path: list[tuple[_RadixNode, int]] = []
        node = self._root
        depth = 0
        while depth < self._code_length:
            branch = _bit(code, depth, self._code_length)
            child = node.children.get(branch)
            if child is None or not _edge_matches(code, depth, child, self._code_length):
                raise IndexStateError(
                    f"code {code:#x} not present in radix tree"
                )
            path.append((node, branch))
            node = child
            depth += child.label_bits
        if tuple_id not in node.ids:
            raise IndexStateError(
                f"tuple {tuple_id} not stored under code {code:#x}"
            )
        node.ids.remove(tuple_id)
        self._size -= 1
        self._prune_empty(path, node)

    def _prune_empty(
        self, path: list[tuple[_RadixNode, int]], leaf: _RadixNode
    ) -> None:
        node = leaf
        for parent, branch in reversed(path):
            if node.ids or node.children:
                break
            del parent.children[branch]
            node = parent

    # -- search ------------------------------------------------------------

    def search(self, query: int, threshold: int) -> list[int]:
        return [
            tuple_id
            for tuple_id, _ in self.search_with_distances(query, threshold)
        ]

    def search_with_distances(
        self, query: int, threshold: int
    ) -> list[tuple[int, int]]:
        """(tuple id, exact distance) pairs; the accumulated edge
        distance at a leaf is the full Hamming distance."""
        self._check_query(query, threshold)
        results: list[tuple[int, int]] = []
        ops = 0
        stack: list[tuple[_RadixNode, int, int]] = [(self._root, 0, 0)]
        while stack:
            node, depth, accumulated = stack.pop()
            if depth == self._code_length:
                results.extend(
                    (tuple_id, accumulated) for tuple_id in node.ids
                )
                continue
            for child in node.children.values():
                ops += 1
                distance = _edge_distance(
                    query, depth, child, self._code_length
                )
                total = accumulated + distance
                if total <= threshold:
                    stack.append((child, depth + child.label_bits, total))
        self.last_search_ops = ops
        return results

    # -- accounting ----------------------------------------------------------

    def stats(self) -> IndexStats:
        nodes = 0
        edges = 0
        entries = 0
        code_bits = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            nodes += 1
            edges += len(node.children)
            entries += len(node.ids)
            code_bits += node.label_bits
            stack.extend(node.children.values())
        return IndexStats(nodes, edges, entries, code_bits)


def _bit(code: int, depth: int, length: int) -> int:
    return (code >> (length - 1 - depth)) & 1


def _suffix(code: int, depth: int, bits: int) -> int:
    return code & ((1 << bits) - 1)


def _common_prefix_length(
    a: int, a_bits: int, b: int, b_bits: int
) -> int:
    """Length of the shared leading bits of two right-aligned labels."""
    width = min(a_bits, b_bits)
    a_top = a >> (a_bits - width)
    b_top = b >> (b_bits - width)
    xor = a_top ^ b_top
    if xor == 0:
        return width
    return width - xor.bit_length()


def _edge_matches(
    code: int, depth: int, child: _RadixNode, length: int
) -> bool:
    segment = (code >> (length - depth - child.label_bits)) & (
        (1 << child.label_bits) - 1
    )
    return segment == child.label


def _edge_distance(
    query: int, depth: int, child: _RadixNode, length: int
) -> int:
    segment = (query >> (length - depth - child.label_bits)) & (
        (1 << child.label_bits) - 1
    )
    return (segment ^ child.label).bit_count()
