"""Static HA-Index: fixed-length segment sharing (Section 4.3).

Codes are cut into fixed-length contiguous segments ("static bit
segmentation").  Each *distinct* segment value of each layer exists once —
the shared vertex nodes N1..N12 of Figure 2 — and a code is the path
through its segment values.  During search, the Hamming distance between
the query and each distinct (layer, value) node is computed **once** and
memoized for the whole query, which is exactly the sharing the paper
illustrates with tuples ``t2`` and ``t7`` both crossing nodes N6 and N11.

The path structure is a trie over segment values, so the accumulated
distance along a path is a lower bound of the full distance and subtree
pruning is exact (Proposition 1).
"""

from __future__ import annotations

from repro.core.errors import IndexStateError, InvalidParameterError
from repro.core.index_base import HammingIndex, IndexStats
from repro.obs import note_search
from repro.obs.trace import record_span, trace_span, tracing

#: Default segment width; the paper's Figure 2 uses 3-bit segments.
DEFAULT_SEGMENT_BITS = 8


class _SegmentNode:
    """A trie node keyed by the next segment value."""

    __slots__ = ("children", "ids", "count")

    def __init__(self) -> None:
        self.children: dict[int, _SegmentNode] = {}
        self.ids: list[int] = []
        self.count = 0


class StaticHAIndex(HammingIndex):
    """Fixed-segmentation HA-Index with per-query memoized segment XORs.

    Args:
        code_length: bit length of the indexed codes.
        segment_bits: width of each segment; the last segment may be
            shorter when ``code_length`` is not a multiple.
    """

    def __init__(
        self, code_length: int, segment_bits: int = DEFAULT_SEGMENT_BITS
    ) -> None:
        super().__init__(code_length)
        if segment_bits < 1:
            raise InvalidParameterError("segment_bits must be positive")
        self._segment_bits = min(segment_bits, code_length)
        self._boundaries = _segment_boundaries(
            code_length, self._segment_bits
        )
        self._root = _SegmentNode()

    @property
    def segment_bits(self) -> int:
        return self._segment_bits

    @property
    def num_segments(self) -> int:
        return len(self._boundaries)

    # -- maintenance -------------------------------------------------------

    def _segments(self, code: int) -> list[int]:
        """Split ``code`` into its per-layer segment values."""
        return [
            (code >> shift) & mask for shift, mask in self._boundaries
        ]

    def insert(self, code: int, tuple_id: int) -> None:
        self._check_query(code, 0)
        self._note_mutation()
        node = self._root
        node.count += 1
        for value in self._segments(code):
            child = node.children.get(value)
            if child is None:
                child = _SegmentNode()
                node.children[value] = child
            node = child
            node.count += 1
        node.ids.append(tuple_id)
        self._size += 1

    def delete(self, code: int, tuple_id: int) -> None:
        self._check_query(code, 0)
        path: list[tuple[_SegmentNode, int]] = []
        node = self._root
        for value in self._segments(code):
            child = node.children.get(value)
            if child is None:
                raise IndexStateError(
                    f"code {code:#x} not present in static HA-index"
                )
            path.append((node, value))
            node = child
        if tuple_id not in node.ids:
            raise IndexStateError(
                f"tuple {tuple_id} not stored under code {code:#x}"
            )
        node.ids.remove(tuple_id)
        self._size -= 1
        self._note_mutation()
        self._root.count -= 1
        child = node
        for parent, value in reversed(path):
            child.count -= 1
            if child.count == 0:
                del parent.children[value]
            child = parent

    # -- search ------------------------------------------------------------

    def search(self, query: int, threshold: int) -> list[int]:
        return [
            tuple_id
            for tuple_id, _ in self.search_with_distances(query, threshold)
        ]

    def search_with_distances(
        self, query: int, threshold: int
    ) -> list[tuple[int, int]]:
        """(tuple id, exact distance) pairs; the leaf's accumulated
        per-segment distance is the full Hamming distance."""
        self._check_query(query, threshold)
        if tracing():
            with trace_span(
                "h_search", engine="static", threshold=threshold
            ):
                return self._search_traced(query, threshold)
        query_segments = self._segments(query)
        # One distance computation per distinct (layer, segment value):
        # the static HA-Index's node sharing.
        memo: list[dict[int, int]] = [{} for _ in self._boundaries]
        results: list[tuple[int, int]] = []
        ops = 0
        stack: list[tuple[_SegmentNode, int, int]] = [(self._root, 0, 0)]
        while stack:
            node, layer, accumulated = stack.pop()
            if layer == len(self._boundaries):
                results.extend(
                    (tuple_id, accumulated) for tuple_id in node.ids
                )
                continue
            layer_memo = memo[layer]
            query_value = query_segments[layer]
            for value, child in node.children.items():
                distance = layer_memo.get(value)
                if distance is None:
                    # A memo miss is the one real XOR for this distinct
                    # (layer, value) node — the index's sharing at work.
                    ops += 1
                    distance = (value ^ query_value).bit_count()
                    layer_memo[value] = distance
                total = accumulated + distance
                if total <= threshold:
                    stack.append((child, layer + 1, total))
        self.last_search_ops = ops
        note_search("static", ops)
        return results

    def _search_traced(
        self, query: int, threshold: int
    ) -> list[tuple[int, int]]:
        """`search_with_distances` with per-layer op attribution.

        Identical depth-first walk; memo misses are tallied per trie
        layer and emitted as one ``h_search.layer`` span each (the DFS
        interleaves layers, so per-layer wall clock is not separable
        and the spans carry ops only).  The layer ops sum to
        ``last_search_ops``.
        """
        query_segments = self._segments(query)
        memo: list[dict[int, int]] = [{} for _ in self._boundaries]
        layer_ops = [0] * len(self._boundaries)
        results: list[tuple[int, int]] = []
        stack: list[tuple[_SegmentNode, int, int]] = [(self._root, 0, 0)]
        while stack:
            node, layer, accumulated = stack.pop()
            if layer == len(self._boundaries):
                results.extend(
                    (tuple_id, accumulated) for tuple_id in node.ids
                )
                continue
            layer_memo = memo[layer]
            query_value = query_segments[layer]
            for value, child in node.children.items():
                distance = layer_memo.get(value)
                if distance is None:
                    layer_ops[layer] += 1
                    distance = (value ^ query_value).bit_count()
                    layer_memo[value] = distance
                total = accumulated + distance
                if total <= threshold:
                    stack.append((child, layer + 1, total))
        for layer, ops in enumerate(layer_ops):
            record_span(
                "h_search.layer", 0.0, ops=ops,
                depth=layer, distinct_values=len(memo[layer]),
            )
        self.last_search_ops = sum(layer_ops)
        note_search("static", self.last_search_ops)
        return results

    # -- accounting ----------------------------------------------------------

    def stats(self) -> IndexStats:
        nodes = 0
        edges = 0
        entries = 0
        # Distinct (layer, value) pairs hold the code material once.
        distinct: list[set[int]] = [set() for _ in self._boundaries]
        stack: list[tuple[_SegmentNode, int]] = [(self._root, 0)]
        while stack:
            node, layer = stack.pop()
            nodes += 1
            edges += len(node.children)
            entries += len(node.ids)
            for value, child in node.children.items():
                distinct[layer].add(value)
                stack.append((child, layer + 1))
        code_bits = sum(
            len(values) * _mask_bits(self._boundaries[layer][1])
            for layer, values in enumerate(distinct)
        )
        return IndexStats(nodes, edges, entries, code_bits)


def _segment_boundaries(
    code_length: int, segment_bits: int
) -> list[tuple[int, int]]:
    """(shift, mask) pairs for each segment, most significant first."""
    boundaries = []
    position = 0
    while position < code_length:
        width = min(segment_bits, code_length - position)
        shift = code_length - position - width
        boundaries.append((shift, (1 << width) - 1))
        position += width
    return boundaries


def _mask_bits(mask: int) -> int:
    return mask.bit_length()
