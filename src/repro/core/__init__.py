"""Core primitives and the HA-Index family."""

from repro.core.bitvector import CodeSet, hamming_distance
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.errors import ReproError
from repro.core.flat_ha import FlatHAIndex
from repro.core.index_base import HammingIndex, IndexStats
from repro.core.join import hamming_join, nested_loops_join, self_join
from repro.core.knn import knn_join, knn_select
from repro.core.pattern import MaskedPattern
from repro.core.radix_tree import RadixTreeIndex
from repro.core.relational import (
    hamming_difference,
    hamming_distinct,
    hamming_intersect,
)
from repro.core.select import INDEX_FAMILIES, hamming_select
from repro.core.static_ha import StaticHAIndex
from repro.core.weighted import (
    WeightedHammingIndex,
    Weights,
    weighted_hamming,
    weighted_knn,
    weighted_select,
)

__all__ = [
    "CodeSet",
    "hamming_distance",
    "DynamicHAIndex",
    "FlatHAIndex",
    "ReproError",
    "HammingIndex",
    "IndexStats",
    "hamming_join",
    "nested_loops_join",
    "self_join",
    "knn_join",
    "knn_select",
    "MaskedPattern",
    "RadixTreeIndex",
    "hamming_difference",
    "hamming_distinct",
    "hamming_intersect",
    "INDEX_FAMILIES",
    "hamming_select",
    "StaticHAIndex",
    "WeightedHammingIndex",
    "Weights",
    "weighted_hamming",
    "weighted_knn",
    "weighted_select",
]
