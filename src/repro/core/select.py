"""Hamming-select front-end (Definition 1) and the index registry.

``hamming_select`` evaluates ``h-select(tq, S)`` either against a prebuilt
:class:`HammingIndex` or directly against a :class:`CodeSet` (in which
case a vectorized linear scan is used).  ``INDEX_FAMILIES`` names every
index implementation compared in the paper's Table 4 so benchmarks and
examples can construct them uniformly.
"""

from __future__ import annotations

from typing import Callable

from repro.core.bitvector import CodeSet, batch_hamming_wide, batch_select
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.index_base import HammingIndex
from repro.core.radix_tree import RadixTreeIndex
from repro.core.static_ha import StaticHAIndex
from repro.obs import maybe_trace


def hamming_select(
    query: int,
    target: HammingIndex | CodeSet,
    threshold: int,
    *,
    profile: bool = False,
) -> list[int]:
    """Tuple ids of ``target`` within Hamming distance ``threshold``.

    >>> codes = CodeSet.from_strings(
    ...     ["001001010", "001011101", "011001100", "101001010",
    ...      "101110110", "101011101", "101101010", "111001100"])
    >>> sorted(hamming_select(0b101100010, codes, 3))
    [0, 3, 4, 6]

    (The paper's Example 1: the query ``"101100010"`` with ``h = 3``
    selects tuples ``t0, t3, t4, t6`` of Table 2a.)

    With ``profile=True`` the evaluation runs under an ``h_select``
    trace whose span tree (per-level op attribution when an HA-Index
    engine serves the query) is afterwards available from
    :func:`repro.obs.last_trace`.
    """
    with maybe_trace("h_select", profile, threshold=threshold):
        if isinstance(target, HammingIndex):
            return target.search(query, threshold)
        ids = target.ids
        if target.length <= 64:
            matches = batch_select(target.packed(), query, threshold)
        else:
            distances = batch_hamming_wide(target.packed_wide(), query)
            matches = (distances <= threshold).nonzero()[0]
        return [ids[i] for i in matches]


def _build_nested_loops(codes: CodeSet) -> HammingIndex:
    from repro.baselines.nested_loops import NestedLoopsIndex

    return NestedLoopsIndex.build(codes)


def _build_multi_hash(tables: int) -> Callable[[CodeSet], HammingIndex]:
    def builder(codes: CodeSet) -> HammingIndex:
        from repro.baselines.multi_hash import MultiHashTableIndex

        return MultiHashTableIndex.build(codes, num_tables=tables)

    return builder


def _build_hengine(codes: CodeSet) -> HammingIndex:
    from repro.baselines.hengine import HEngineIndex

    return HEngineIndex.build(codes)


def _build_radix(codes: CodeSet) -> HammingIndex:
    return RadixTreeIndex.build(codes)


def _build_static(codes: CodeSet) -> HammingIndex:
    return StaticHAIndex.build(codes)


def _build_dynamic(codes: CodeSet) -> HammingIndex:
    return DynamicHAIndex.build(codes)


#: Builders for every approach of Table 4, keyed by the paper's names.
INDEX_FAMILIES: dict[str, Callable[[CodeSet], HammingIndex]] = {
    "Nested-Loops": _build_nested_loops,
    "MH-4": _build_multi_hash(4),
    "MH-10": _build_multi_hash(10),
    "HEngine": _build_hengine,
    "Radix-Tree": _build_radix,
    "SHA-Index": _build_static,
    "DHA-Index": _build_dynamic,
}
