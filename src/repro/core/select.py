"""Hamming-select front-end (Definition 1) and the index registry.

``hamming_select`` evaluates ``h-select(tq, S)`` either against a prebuilt
:class:`HammingIndex` or directly against a :class:`CodeSet` (in which
case a vectorized linear scan is used).  ``INDEX_FAMILIES`` names every
index implementation compared in the paper's Table 4 so benchmarks and
examples can construct them uniformly; it is derived from the central
engine registry (:mod:`repro.core.engines`), which also knows the
non-paper engines (``flat``, ``mih``).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.bitvector import CodeSet, batch_hamming_wide, batch_select
from repro.core.engines import paper_families
from repro.core.index_base import HammingIndex
from repro.obs import maybe_trace


def hamming_select(
    query: int,
    target: HammingIndex | CodeSet,
    threshold: int,
    *,
    weights: "Sequence[float] | None" = None,
    weight_strategy: str = "auto",
    profile: bool = False,
) -> list[int]:
    """Tuple ids of ``target`` within Hamming distance ``threshold``.

    >>> codes = CodeSet.from_strings(
    ...     ["001001010", "001011101", "011001100", "101001010",
    ...      "101110110", "101011101", "101101010", "111001100"])
    >>> sorted(hamming_select(0b101100010, codes, 3))
    [0, 3, 4, 6]

    (The paper's Example 1: the query ``"101100010"`` with ``h = 3``
    selects tuples ``t0, t3, t4, t6`` of Table 2a.)

    With ``weights`` (one non-negative float per bit) the threshold is
    a *weighted* Hamming distance and the query routes through
    :func:`repro.core.weighted.weighted_select` with the chosen
    ``weight_strategy`` (``auto``/``native``/``rerank``); uniform
    weights of 1.0 reproduce the unweighted result exactly.

    With ``profile=True`` the evaluation runs under an ``h_select``
    trace whose span tree (per-level op attribution when an HA-Index
    engine serves the query) is afterwards available from
    :func:`repro.obs.last_trace`.
    """
    if weights is not None:
        from repro.core.weighted import weighted_select

        return weighted_select(
            query, target, threshold, weights,
            strategy=weight_strategy, profile=profile,
        )
    with maybe_trace("h_select", profile, threshold=threshold):
        if isinstance(target, HammingIndex):
            return target.search(query, threshold)
        ids = target.ids
        if target.length <= 64:
            matches = batch_select(target.packed(), query, threshold)
        else:
            distances = batch_hamming_wide(target.packed_wide(), query)
            matches = (distances <= threshold).nonzero()[0]
        return [ids[i] for i in matches]


def hamming_select_batch(
    queries: Sequence[int],
    target: HammingIndex | CodeSet,
    threshold: int,
    *,
    profile: bool = False,
) -> list[list[int]]:
    """One id list per query, each equal to ``hamming_select(query, ...)``.

    Batched engines (flat, native, MIH) answer the whole batch through
    one shared sweep — frontier state is kept across the batch instead
    of being rebuilt per query; engines without batched entry points
    (and plain :class:`CodeSet` scans) fall back to a per-query loop
    with identical results.
    """
    queries = list(queries)
    with maybe_trace(
        "h_select", profile, threshold=threshold, batch=len(queries)
    ):
        if isinstance(target, HammingIndex):
            batched = getattr(target, "search_batch", None)
            if batched is not None:
                return batched(queries, threshold)
            return [target.search(q, threshold) for q in queries]
        return [
            hamming_select(q, target, threshold) for q in queries
        ]


#: Builders for every approach of Table 4, keyed by the paper's names.
INDEX_FAMILIES: dict[str, Callable[[CodeSet], HammingIndex]] = (
    paper_families()
)
