"""Common interface implemented by every Hamming-select index.

All indexes in the library — the paper's Radix-Tree, Static and Dynamic
HA-Indexes as well as the baselines (nested loops, MultiHashTable,
HEngine, HmSearch) — expose the same contract so the select/join/kNN
front-ends and the benchmark harness can treat them interchangeably:

* :meth:`build` constructs the index from a :class:`CodeSet`;
* :meth:`search` answers ``h-select`` exactly (all tuple ids within the
  threshold, no false positives or negatives);
* :meth:`insert` / :meth:`delete` maintain the index (Table 4's "update
  time" is one delete followed by one insert);
* :meth:`stats` reports structural size and a modelled memory footprint.
"""

from __future__ import annotations

import pickle
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.core.bitvector import CodeSet
from repro.core.errors import CodeLengthError, InvalidParameterError

#: Modelled per-object costs (bytes) used by every index's memory estimate.
#: One cost model across all indexes keeps Table 4's memory column an
#: apples-to-apples comparison; see DESIGN.md §4.
NODE_BYTES = 48
EDGE_BYTES = 8
ENTRY_BYTES = 16
CODE_BYTES_PER_BIT = 1 / 8


@dataclass(frozen=True, slots=True)
class IndexStats:
    """Structural size of an index under the shared cost model.

    Attributes:
        nodes: internal structure nodes (tree/DAG nodes, hash buckets).
        edges: parent-child or bucket-chain links.
        entries: stored (code, tuple-id) payload entries, counting
            duplication (MultiHashTable stores each tuple once per table).
        code_bits: total bits of code material stored.
    """

    nodes: int
    edges: int
    entries: int
    code_bits: int

    @property
    def memory_bytes(self) -> int:
        """Modelled resident size in bytes."""
        return int(
            self.nodes * NODE_BYTES
            + self.edges * EDGE_BYTES
            + self.entries * ENTRY_BYTES
            + self.code_bits * CODE_BYTES_PER_BIT
        )


class HammingIndex(ABC):
    """Abstract base for exact Hamming-select indexes.

    Besides wall-clock, the paper argues in *distance computations
    avoided*; every index therefore updates :attr:`last_search_ops` —
    the number of XOR/popcount distance evaluations its most recent
    :meth:`search` performed — so benchmarks can compare the structural
    work independent of constant factors.
    """

    def __init__(self, code_length: int) -> None:
        if code_length < 1:
            raise InvalidParameterError("code length must be positive")
        self._code_length = code_length
        self._size = 0
        self._mutations = 0
        #: Distance computations performed by the most recent search.
        self.last_search_ops = 0

    @property
    def code_length(self) -> int:
        """Bit length of the indexed codes."""
        return self._code_length

    @property
    def mutation_count(self) -> int:
        """Structural mutations (inserts/deletes) applied so far.

        The online serving layer (:mod:`repro.service`) derives its cache
        epoch from this counter; indexes bump it through
        :meth:`_note_mutation` in their maintenance paths.
        """
        return getattr(self, "_mutations", 0)

    def _note_mutation(self) -> None:
        self._mutations = self.mutation_count + 1

    def snapshot(self) -> "HammingIndex":
        """A deep, independent copy of the index.

        The serving layer's copy-on-swap refresh path mutates a snapshot
        offline and atomically swaps it in, so readers never observe a
        half-rebuilt structure.  The copy is taken through the pickle wire
        format (compact for :class:`DynamicHAIndex`); its mutation counter
        restarts at the copied state.
        """
        return pickle.loads(
            pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        )

    def __len__(self) -> int:
        """Number of indexed tuples."""
        return self._size

    @classmethod
    def build(cls, codes: CodeSet, **params) -> "HammingIndex":
        """Construct an index over ``codes`` (ids taken from the set)."""
        index = cls(codes.length, **params)
        index._bulk_load(codes)
        return index

    def _bulk_load(self, codes: CodeSet) -> None:
        """Default bulk load: repeated insert; subclasses may override."""
        for code, tuple_id in zip(codes.codes, codes.ids):
            self.insert(code, tuple_id)

    def _check_query(self, query: int, threshold: int) -> None:
        if query < 0 or query >> self._code_length:
            raise CodeLengthError(
                f"query {query:#x} does not fit in {self._code_length} bits"
            )
        if threshold < 0:
            raise InvalidParameterError("threshold must be non-negative")

    @abstractmethod
    def search(self, query: int, threshold: int) -> list[int]:
        """Tuple ids whose code is within ``threshold`` of ``query``."""

    @abstractmethod
    def insert(self, code: int, tuple_id: int) -> None:
        """Add one (code, tuple id) pair."""

    @abstractmethod
    def delete(self, code: int, tuple_id: int) -> None:
        """Remove one (code, tuple id) pair; raises if absent."""

    @abstractmethod
    def stats(self) -> IndexStats:
        """Structural size under the shared memory model."""
