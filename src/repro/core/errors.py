"""Exception hierarchy for the repro library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CodeLengthError(ReproError):
    """A binary code's length does not match what the operation expects."""


class InvalidParameterError(ReproError):
    """A caller-supplied parameter is outside its valid range."""


class IndexStateError(ReproError):
    """An index operation was attempted in an invalid state.

    Examples: searching an index that has not been built, deleting a tuple
    that is not present, or merging indexes with incompatible code lengths.
    """


class HashNotFittedError(ReproError):
    """A learned similarity hash was used before :meth:`fit` was called."""


class JobConfigurationError(ReproError):
    """A MapReduce job specification is inconsistent or incomplete."""


class JobExecutionError(ReproError):
    """A MapReduce task kept failing past the retry budget."""


class WorkerLostError(JobExecutionError):
    """A simulated worker died (or none are left to schedule tasks on).

    Subclasses :class:`JobExecutionError` so callers treating any job
    abort uniformly keep working; catch this type specifically to react
    to cluster shrinkage rather than task-level failures.
    """


class CheckpointError(ReproError):
    """A pipeline checkpoint could not be persisted or read back."""


class StoreError(ReproError):
    """A durable-store artifact (snapshot or WAL) could not be used.

    Raised when one on-disk generation is unreadable — corrupt header,
    checksum mismatch, truncated payload.  Recovery treats it as "try
    the previous generation"; only :class:`StoreCorruptionError` means
    the store as a whole is unrecoverable.
    """


class StoreCorruptionError(StoreError):
    """No snapshot generation of a durable store could be recovered."""


class ServiceError(ReproError):
    """Base class for online query-serving failures (:mod:`repro.service`)."""


class ServiceOverloadError(ServiceError):
    """Admission control rejected a query because the queue is full.

    Carries ``retry_after_seconds`` — the service's estimate of when the
    backlog will have drained enough to admit the query, so callers can
    back off instead of hammering a saturated server.
    """

    def __init__(self, message: str, retry_after_seconds: float) -> None:
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds


class ServiceTimeoutError(ServiceError):
    """A query missed its deadline before (or while) being executed."""


class ServiceClosedError(ServiceError):
    """An operation was attempted on a stopped query service."""


class ReplicaUnavailableError(ServiceError):
    """Every replica of a shard was unavailable for a dispatch.

    Raised by the sharded serving plane when failover exhausts a
    shard's replica set; under the default fail-open policy the last
    replica is always consulted, so this surfaces only when a shard is
    explicitly configured with zero replicas or torn down mid-flight.
    """


class PoolTimeoutError(ServiceError):
    """A shard-pool scatter exceeded its task timeout.

    The parallel executor (:mod:`repro.service.executor`) raises this
    when a worker neither answers nor dies within ``task_timeout`` —
    the fail-fast guard that turns a deadlocked or wedged pool into an
    actionable error instead of a hung serving thread.  Process-pool
    scatters prefer degrading (inline fallback on the gather thread)
    and only raise when the fallback path is unavailable too.
    """
