"""Approximate kNN over binary codes via expanding Hamming-select.

Section 2 of the paper describes the standard hash-based approximate kNN
recipe: map the query through the learned similarity hash, run a
Hamming-select with threshold ``h``, and if fewer than ``k`` answers come
back, enlarge the threshold and repeat until ``k`` or more are found; the
``k`` closest by Hamming distance are reported.  The HA-Index makes each
round fast, which is the speed-up Table 5 measures.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.bitvector import CodeSet
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.errors import InvalidParameterError
from repro.core.index_base import HammingIndex
from repro.obs import maybe_trace
from repro.obs.trace import trace_span

#: Default starting threshold for the expanding search.
DEFAULT_INITIAL_THRESHOLD = 2


def knn_select(
    query: int,
    index: HammingIndex,
    k: int,
    initial_threshold: int = DEFAULT_INITIAL_THRESHOLD,
    threshold_step: int | None = None,
    *,
    weights: "Sequence[float] | None" = None,
    weight_strategy: str = "auto",
    profile: bool = False,
) -> list[tuple[int, int]]:
    """The ``k`` Hamming-nearest tuples as (tuple id, distance) pairs.

    Results are sorted by distance then tuple id; fewer than ``k`` pairs
    are returned only when the index holds fewer than ``k`` tuples.
    ``threshold_step`` defaults to ``max(2, code_length // 8)`` — the
    "larger distance threshold is estimated and the near neighbor query
    is repeated" loop of Section 2, scaled so long codes (whose useful
    radii are proportionally larger) do not pay dozens of rounds.
    ``profile=True`` traces each expansion round as a ``knn.round``
    span (:func:`repro.obs.last_trace`).

    With ``weights`` the ranking is by *weighted* Hamming distance:
    the query routes through
    :func:`repro.core.weighted.weighted_knn` (distances come back as
    exact fixed-point floats; uniform 1.0 weights reproduce the
    unweighted ranking and tie breaks exactly).

    Indexes with a native exact kNN (``knn_search``, e.g. the MIH
    engine's progressive radius expansion) answer directly instead of
    running the expanding-threshold loop; both strategies return the
    ``k`` smallest (distance, id) pairs of the full ranking, so the
    results are identical.
    """
    if k < 1:
        raise InvalidParameterError("k must be positive")
    if weights is not None:
        from repro.core.weighted import weighted_knn

        return weighted_knn(
            query, index, k, weights,
            strategy=weight_strategy, profile=profile,
        )
    if threshold_step is None:
        threshold_step = max(2, index.code_length // 8)
    if initial_threshold < 0 or threshold_step < 1:
        raise InvalidParameterError(
            "need initial_threshold >= 0 and threshold_step >= 1"
        )
    threshold = initial_threshold
    available = len(index)
    target = min(k, available)
    with maybe_trace("knn", profile, k=k):
        native = getattr(index, "knn_search", None)
        if native is not None:
            return native(query, k)
        while True:
            with trace_span(
                "knn.round", threshold=threshold
            ) as round_span:
                matches = _matches_with_distances(
                    index, query, threshold
                )
                round_span.annotate(matches=len(matches))
            if len(matches) >= target or threshold >= index.code_length:
                matches.sort(key=lambda pair: (pair[1], pair[0]))
                return matches[:k]
            threshold = min(
                threshold + threshold_step, index.code_length
            )


def knn_select_batch(
    queries: Sequence[int],
    index: HammingIndex,
    k: int,
    initial_threshold: int = DEFAULT_INITIAL_THRESHOLD,
    threshold_step: int | None = None,
    *,
    profile: bool = False,
) -> list[list[tuple[int, int]]]:
    """Fused expanding-threshold kNN for a whole query batch.

    Each returned pair list equals ``knn_select(query, index, k, ...)``:
    every query sees exactly the same threshold schedule, but each
    round answers all still-unsatisfied queries through one shared
    ``search_with_distances_batch`` sweep instead of rebuilding the
    frontier per query per round.  Queries that already have ``k``
    matches drop out of later rounds.  Engines with a native exact kNN
    (MIH) or without batched distance search fall back to the
    per-query loop — results are identical either way.
    """
    if k < 1:
        raise InvalidParameterError("k must be positive")
    if threshold_step is None:
        threshold_step = max(2, index.code_length // 8)
    if initial_threshold < 0 or threshold_step < 1:
        raise InvalidParameterError(
            "need initial_threshold >= 0 and threshold_step >= 1"
        )
    queries = list(queries)
    if not queries:
        return []
    batched = getattr(index, "search_with_distances_batch", None)
    if batched is None or hasattr(index, "knn_search"):
        return [
            knn_select(
                query, index, k,
                initial_threshold=initial_threshold,
                threshold_step=threshold_step,
            )
            for query in queries
        ]
    target = min(k, len(index))
    results: list[list[tuple[int, int]] | None] = [None] * len(queries)
    pending = list(range(len(queries)))
    threshold = initial_threshold
    with maybe_trace("knn", profile, k=k, batch=len(queries)):
        while pending:
            with trace_span(
                "knn.round", threshold=threshold
            ) as round_span:
                match_lists = batched(
                    [queries[i] for i in pending], threshold
                )
                round_span.annotate(queries=len(pending))
            still: list[int] = []
            for position, matches in zip(pending, match_lists):
                if (
                    len(matches) >= target
                    or threshold >= index.code_length
                ):
                    matches.sort(key=lambda pair: (pair[1], pair[0]))
                    results[position] = matches[:k]
                else:
                    still.append(position)
            pending = still
            threshold = min(
                threshold + threshold_step, index.code_length
            )
    return results  # type: ignore[return-value]


def _matches_with_distances(
    index: HammingIndex, query: int, threshold: int
) -> list[tuple[int, int]]:
    # Ranking needs distances, which plain ``search`` does not return
    # and cannot be re-derived without the codes; every shipped index
    # exposes the richer entry point.
    search = getattr(index, "search_with_distances", None)
    if search is not None:
        return search(query, threshold)
    raise InvalidParameterError(
        f"{type(index).__name__} does not expose search_with_distances"
    )


def knn_join(
    left: CodeSet,
    right: CodeSet,
    k: int,
    initial_threshold: int = DEFAULT_INITIAL_THRESHOLD,
    threshold_step: int | None = None,
) -> dict[int, list[tuple[int, int]]]:
    """For each left tuple, its ``k`` Hamming-nearest right tuples.

    Unlike ``h-join``, kNN-join is asymmetric (Section 3, footnote 1).
    Returns ``{left id: [(right id, distance), ...]}``.
    """
    index = DynamicHAIndex.build(right)
    return {
        left_id: knn_select(
            code,
            index,
            k,
            initial_threshold=initial_threshold,
            threshold_step=threshold_step,
        )
        for code, left_id in zip(left.codes, left.ids)
    }


def exact_knn_codes(
    query: int, codes: Sequence[int], ids: Sequence[int], k: int
) -> list[tuple[int, int]]:
    """Ground-truth kNN by full scan over codes; for tests and recall."""
    scored = sorted(
        ((code ^ query).bit_count(), tuple_id)
        for code, tuple_id in zip(codes, ids)
    )
    return [(tuple_id, distance) for distance, tuple_id in scored[:k]]
