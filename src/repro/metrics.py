"""Evaluation metrics: precision/recall and formatting helpers.

Figure 10b reports precision and recall of the approximate (hash-based)
kNN-join against the exact join; these helpers compute both for pair sets
and for per-query neighbour lists, plus the brute-force ground truths the
comparisons need.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.errors import InvalidParameterError


def precision_recall(
    predicted: Iterable[tuple[int, int]],
    actual: Iterable[tuple[int, int]],
) -> tuple[float, float]:
    """Precision and recall of a predicted pair set vs. the truth.

    Both default to 1.0 on empty denominators (no predictions made /
    nothing to find).
    """
    predicted_set = set(predicted)
    actual_set = set(actual)
    hits = len(predicted_set & actual_set)
    precision = hits / len(predicted_set) if predicted_set else 1.0
    recall = hits / len(actual_set) if actual_set else 1.0
    return precision, recall


def knn_precision_recall(
    predicted: Mapping[int, Sequence[tuple[int, float]]],
    actual: Mapping[int, Sequence[tuple[int, float]]],
) -> tuple[float, float]:
    """Average per-query precision/recall of kNN neighbour lists.

    Queries absent from ``predicted`` count as empty answers.
    """
    if not actual:
        return 1.0, 1.0
    precisions = []
    recalls = []
    for query_id, truth in actual.items():
        truth_ids = {neighbor for neighbor, _ in truth}
        predicted_ids = {
            neighbor for neighbor, _ in predicted.get(query_id, ())
        }
        hits = len(truth_ids & predicted_ids)
        precisions.append(hits / len(predicted_ids) if predicted_ids else 1.0)
        recalls.append(hits / len(truth_ids) if truth_ids else 1.0)
    return float(np.mean(precisions)), float(np.mean(recalls))


def exact_knn_join(
    left: Sequence[tuple[int, np.ndarray]],
    right: Sequence[tuple[int, np.ndarray]],
    k: int,
) -> dict[int, list[tuple[int, float]]]:
    """Brute-force Euclidean kNN join: the Figure 10b ground truth."""
    if k < 1:
        raise InvalidParameterError("k must be positive")
    right_matrix = np.vstack([vector for _, vector in right])
    right_ids = [tuple_id for tuple_id, _ in right]
    result: dict[int, list[tuple[int, float]]] = {}
    for left_id, vector in left:
        distances = np.linalg.norm(right_matrix - vector, axis=1)
        order = np.argsort(distances, kind="stable")[:k]
        result[left_id] = [
            (right_ids[i], float(distances[i])) for i in order
        ]
    return result


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (``fraction`` in [0, 1]).

    The serving layer's latency reporting uses nearest-rank (not
    interpolated) percentiles so p99 is always an actually observed
    latency.  Raises on an empty sample set or a fraction outside [0, 1].
    """
    if not samples:
        raise InvalidParameterError("percentile of no samples")
    if not 0.0 <= fraction <= 1.0:
        raise InvalidParameterError("fraction must be in [0, 1]")
    if any(math.isnan(sample) for sample in samples):
        # NaN poisons sorted() (comparisons are all False, so the
        # "order" depends on input position) — refuse rather than
        # return an arbitrary element.
        raise InvalidParameterError("percentile of NaN sample")
    ordered = sorted(samples)
    rank = max(1, int(math.ceil(fraction * len(ordered))))
    return ordered[rank - 1]


def latency_summary(samples: Sequence[float]) -> dict[str, float]:
    """Mean/p50/p95/p99/max of a latency sample set (milliseconds).

    Returns zeros for an empty set so a quiet service still renders a
    stats block; non-finite samples (a poisoned timer reading) are
    dropped rather than propagated into every percentile.  ``count``
    reports only the finite samples summarized.  Keys: ``count``,
    ``mean_ms``, ``p50_ms``, ``p95_ms``, ``p99_ms``, ``max_ms``.
    """
    finite = [sample for sample in samples if math.isfinite(sample)]
    if not finite:
        return {
            "count": 0.0, "mean_ms": 0.0, "p50_ms": 0.0,
            "p95_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0,
        }
    return {
        "count": float(len(finite)),
        "mean_ms": float(sum(finite) / len(finite)),
        "p50_ms": percentile(finite, 0.50),
        "p95_ms": percentile(finite, 0.95),
        "p99_ms": percentile(finite, 0.99),
        "max_ms": max(finite),
    }


def format_bytes(num_bytes: int) -> str:
    """Human-readable byte count (``1.50 GB`` style)."""
    size = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if size < 1024.0 or unit == "TB":
            return f"{size:.2f} {unit}"
        size /= 1024.0
    raise AssertionError("unreachable")


def megabytes(num_bytes: int) -> float:
    """Bytes to MiB, for table output."""
    return num_bytes / (1024.0 * 1024.0)
