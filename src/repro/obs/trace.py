"""Hierarchical query tracing: spans with wall-clock and op attribution.

A *trace* is a tree of :class:`Span` objects rooted at one
:func:`trace` context.  Instrumentation sites open child spans with
:func:`trace_span` (or attach pre-timed ones with :func:`record_span`)
and attribute *distance computations* to them with
:meth:`Span.add_ops` — the unit the paper's evaluation counts, so a
trace of one H-Search shows exactly where `last_search_ops` was spent.

Overhead discipline
-------------------
Collection only happens while a trace is open **on the current
thread**.  Every instrumentation site first calls :func:`tracing`,
which is a single thread-local attribute probe; with no open trace the
hot paths fall through to their uninstrumented loops, keeping the
disabled overhead below the 2% budget recorded in
``docs/observability.md``.  The heavyweight traced variants of the
engine walks (per-level attribution) are separate code paths selected
by that probe, never conditionals inside the hot loops.
"""

from __future__ import annotations

import threading
import time
from typing import Iterator

__all__ = [
    "Span",
    "trace",
    "trace_span",
    "capture_span",
    "attach_span",
    "record_span",
    "tracing",
    "current_span",
    "add_ops",
    "last_trace",
    "render_span_tree",
]

_tls = threading.local()
_last_lock = threading.Lock()
_last_trace: "Span | None" = None


class Span:
    """One node of a trace tree.

    Attributes:
        name: dotted span name (``h_search.level``, ``mr.map`` ...).
        attrs: static attributes attached at creation or via
            :meth:`annotate` (depth, engine, byte counts ...).
        ops: distance computations attributed directly to this span
            (children excluded; see :attr:`total_ops`).
        seconds: wall-clock (or, for MapReduce phases, simulated)
            duration.  Filled on context exit, or supplied explicitly
            through :func:`record_span`.
        children: sub-spans in creation order.
    """

    __slots__ = ("name", "attrs", "ops", "seconds", "children", "_started")

    def __init__(self, name: str, attrs: dict | None = None) -> None:
        self.name = name
        self.attrs: dict = attrs or {}
        self.ops = 0
        self.seconds = 0.0
        self.children: list[Span] = []
        self._started = 0.0

    def add_ops(self, amount: int) -> None:
        """Attribute ``amount`` distance computations to this span."""
        self.ops += amount

    def annotate(self, **attrs: object) -> None:
        """Attach or overwrite static attributes."""
        self.attrs.update(attrs)

    @property
    def total_ops(self) -> int:
        """Ops of this span plus all descendants."""
        return self.ops + sum(child.total_ops for child in self.children)

    def find(self, name: str) -> list["Span"]:
        """Every descendant span (depth-first) with the given name."""
        found = []
        stack = list(reversed(self.children))
        while stack:
            span = stack.pop()
            if span.name == name:
                found.append(span)
            stack.extend(reversed(span.children))
        return found

    def as_dict(self) -> dict:
        """JSON-able representation of the subtree."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "ops": self.ops,
            "attrs": dict(self.attrs),
            "children": [child.as_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Rebuild a subtree serialized by :meth:`as_dict`.

        The process-pool scatter path ships spans across the worker
        pipe as plain dicts (spans hold no picklable guarantees beyond
        their data) and the parent reattaches the rebuilt subtree to
        its own open trace.
        """
        span = cls(str(data["name"]), dict(data.get("attrs") or {}))
        span.ops = int(data.get("ops", 0))
        span.seconds = float(data.get("seconds", 0.0))
        span.children = [
            cls.from_dict(child) for child in data.get("children", ())
        ]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, ops={self.ops}, "
            f"seconds={self.seconds:.6f}, "
            f"children={len(self.children)})"
        )


def _stack() -> list[Span]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def tracing() -> bool:
    """True iff a trace is open on the current thread.

    This is the guard every instrumentation site checks before doing
    any collection work; it must stay a single attribute probe.
    """
    return bool(getattr(_tls, "stack", None))


def current_span() -> Span | None:
    """The innermost open span of this thread's trace, or ``None``."""
    stack = getattr(_tls, "stack", None)
    return stack[-1] if stack else None


def add_ops(amount: int) -> None:
    """Attribute ops to the innermost open span (no-op when idle)."""
    stack = getattr(_tls, "stack", None)
    if stack:
        stack[-1].ops += amount


class _TraceContext:
    """Context manager pushing one span; reusable root and child."""

    __slots__ = ("_span", "_root")

    def __init__(self, span: Span, root: bool) -> None:
        self._span = span
        self._root = root

    def __enter__(self) -> Span:
        span = self._span
        span._started = time.perf_counter()
        _stack().append(span)
        return span

    def __exit__(self, *exc_info: object) -> None:
        span = self._span
        span.seconds = time.perf_counter() - span._started
        stack = _stack()
        assert stack and stack[-1] is span, "unbalanced span nesting"
        stack.pop()
        if self._root:
            global _last_trace
            with _last_lock:
                _last_trace = span


class _NoopContext:
    """Shared do-nothing context handed out when no trace is open."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return _NOOP_SPAN

    def __exit__(self, *exc_info: object) -> None:
        return None


class _NoopSpan:
    """Absorbs span mutations on the disabled path."""

    __slots__ = ()
    ops = 0
    seconds = 0.0
    children: list[Span] = []

    def add_ops(self, amount: int) -> None:
        return None

    def annotate(self, **attrs: object) -> None:
        return None


_NOOP_SPAN = _NoopSpan()
_NOOP_CONTEXT = _NoopContext()


def trace(name: str, **attrs: object):
    """Open a root span, activating collection on this thread.

    Nested calls attach as child spans of the innermost open span, so a
    ``profile=True`` API call inside an already-open trace contributes
    its subtree to the outer trace instead of clobbering it.  On exit
    of a *root* span the finished tree is stored for
    :func:`last_trace`.
    """
    span = Span(name, dict(attrs) if attrs else None)
    root = not tracing()
    if not root:
        _stack()[-1].children.append(span)
    return _TraceContext(span, root)


def trace_span(name: str, ops: int = 0, **attrs: object):
    """Open a child span if a trace is active; no-op otherwise."""
    stack = getattr(_tls, "stack", None)
    if not stack:
        return _NOOP_CONTEXT
    span = Span(name, dict(attrs) if attrs else None)
    span.ops = ops
    stack[-1].children.append(span)
    return _TraceContext(span, root=False)


def capture_span(name: str, **attrs: object):
    """Root a *detached* span on the current thread.

    Unlike :func:`trace`, the finished span is neither attached to any
    parent nor published as the last trace — the caller re-attaches it
    explicitly (:func:`attach_span`).  This is the collection primitive
    of the parallel scatter executors: a pool thread (or a worker
    process) captures its ``shard.dispatch`` subtree locally, and the
    gather side attaches the completed subtrees to the parent trace in
    deterministic task order, so concurrent completion order can never
    interleave or corrupt the trace tree.

    While the capture is open, :func:`tracing` is True on this thread,
    so engine instrumentation attributes ops into the subtree exactly
    as it would under a directly-open trace.
    """
    return _TraceContext(Span(name, dict(attrs) if attrs else None), root=False)


def attach_span(span: Span) -> bool:
    """Attach a completed (captured) subtree to the innermost open span.

    Returns False (and drops nothing but the attachment) when no trace
    is open on the current thread.
    """
    stack = getattr(_tls, "stack", None)
    if not stack:
        return False
    stack[-1].children.append(span)
    return True


def record_span(
    name: str, seconds: float, ops: int = 0, **attrs: object
) -> Span | None:
    """Attach a pre-timed child span to the current trace.

    Used where the duration is already known from elsewhere — the
    per-level timings of a vectorized sweep, or the *simulated* wall
    clock of a MapReduce phase (annotate with ``simulated=True`` in
    that case so renderers can flag it).  Returns the span, or ``None``
    when no trace is open.
    """
    stack = getattr(_tls, "stack", None)
    if not stack:
        return None
    span = Span(name, dict(attrs) if attrs else None)
    span.ops = ops
    span.seconds = seconds
    stack[-1].children.append(span)
    return span


def last_trace() -> Span | None:
    """The most recently completed root span (any thread)."""
    with _last_lock:
        return _last_trace


def _render_lines(
    span: Span, prefix: str, is_last: bool, is_root: bool
) -> Iterator[str]:
    connector = "" if is_root else ("`-- " if is_last else "|-- ")
    attrs = ", ".join(
        f"{key}={value}" for key, value in sorted(span.attrs.items())
    )
    parts = [f"{span.name}"]
    if attrs:
        parts.append(f"[{attrs}]")
    parts.append(f"{span.seconds * 1000.0:.3f} ms")
    if span.ops:
        parts.append(f"ops={span.ops}")
    yield f"{prefix}{connector}{' '.join(parts)}"
    child_prefix = prefix if is_root else prefix + (
        "    " if is_last else "|   "
    )
    for position, child in enumerate(span.children):
        yield from _render_lines(
            child,
            child_prefix,
            position == len(span.children) - 1,
            is_root=False,
        )


def render_span_tree(span: Span) -> str:
    """ASCII tree of a trace: name, attrs, milliseconds, ops per span.

    The root line is followed by a summary of total ops so the
    ``repro trace`` acceptance check (per-level ops summing to
    ``last_search_ops``) is visible at a glance.
    """
    lines = list(_render_lines(span, "", is_last=True, is_root=True))
    lines.append(f"total ops: {span.total_ops}")
    return "\n".join(lines)
