"""Process-wide metrics registry: counters, gauges, histograms.

The registry is the serving-path complement of query traces: long-lived
totals exposed in two formats — Prometheus text exposition
(:meth:`MetricsRegistry.render_prometheus`) for scraping, and a nested
JSON snapshot (:meth:`MetricsRegistry.snapshot`) for the CLI and bench
result files.

Ambient instrumentation (engine search counters, service request
accounting, MapReduce job counters) is guarded by the registry's
``enabled`` flag, default **off**: a disabled registry costs the
instrumented paths one attribute probe.  Explicit use (benchmarks, the
``repro metrics`` command, tests) flips it on with
:func:`set_enabled`.

Histograms keep a bounded reservoir of recent samples next to their
cumulative buckets, and :meth:`Histogram.summary` reuses
:func:`repro.metrics.latency_summary` — one percentile implementation
across the serving stats and the observability layer.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Iterable

from repro.core.errors import InvalidParameterError
from repro.metrics import latency_summary

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_LATENCY_BUCKETS_MS",
]

#: Default histogram buckets for millisecond latencies (upper bounds).
DEFAULT_LATENCY_BUCKETS_MS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0,
    50.0, 100.0, 250.0, 1000.0,
)

#: Histogram reservoir size (recent samples kept for percentiles).
DEFAULT_RESERVOIR = 2048


def _format_value(value: float | int) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value == float("inf"):
        return "+Inf"
    return repr(float(value))


def _label_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{value}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


class _Metric:
    """Shared naming/label plumbing of every metric kind."""

    kind = "untyped"

    def __init__(
        self, name: str, help_text: str, labels: dict[str, str]
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.labels = dict(labels)
        self._lock = threading.Lock()

    def expose(self) -> Iterable[tuple[str, str, float | int]]:
        """(suffix, label text, value) samples for text exposition."""
        raise NotImplementedError

    def snapshot_value(self) -> object:
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing total."""

    kind = "counter"

    def __init__(
        self, name: str, help_text: str = "", labels: dict[str, str] = {}
    ) -> None:
        super().__init__(name, help_text, labels)
        self._value: float = 0

    def inc(self, amount: float | int = 1) -> None:
        if amount < 0:
            raise InvalidParameterError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float | int:
        return self._value

    def expose(self) -> Iterable[tuple[str, str, float | int]]:
        yield "", _label_text(self.labels), self._value

    def snapshot_value(self) -> object:
        return self._value


class Gauge(_Metric):
    """A value that goes up and down (queue depth, cache size)."""

    kind = "gauge"

    def __init__(
        self, name: str, help_text: str = "", labels: dict[str, str] = {}
    ) -> None:
        super().__init__(name, help_text, labels)
        self._value: float = 0

    def set(self, value: float | int) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float | int = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float | int = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float | int:
        return self._value

    def expose(self) -> Iterable[tuple[str, str, float | int]]:
        yield "", _label_text(self.labels), self._value

    def snapshot_value(self) -> object:
        return self._value


class Histogram(_Metric):
    """Cumulative-bucket histogram plus a bounded sample reservoir.

    ``observe`` files a sample into every bucket whose upper bound it
    does not exceed (Prometheus ``le`` semantics) and appends it to the
    reservoir backing :meth:`summary`.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labels: dict[str, str] = {},
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS,
        reservoir: int = DEFAULT_RESERVOIR,
    ) -> None:
        super().__init__(name, help_text, labels)
        if not buckets or list(buckets) != sorted(buckets):
            raise InvalidParameterError(
                "histogram buckets must be a sorted, non-empty sequence"
            )
        self.buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # + the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._samples: deque[float] = deque(maxlen=reservoir)

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            self._samples.append(value)
            for position, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[position] += 1
            self._counts[-1] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def summary(self) -> dict[str, float]:
        """`latency_summary` of the recent-sample reservoir."""
        with self._lock:
            samples = list(self._samples)
        return latency_summary(samples)

    def expose(self) -> Iterable[tuple[str, str, float | int]]:
        base = dict(self.labels)
        cumulative = 0
        with self._lock:
            counts = list(self._counts)
            total = self._count
            acc = self._sum
        for position, bound in enumerate(self.buckets):
            cumulative = counts[position]
            labels = dict(base)
            labels["le"] = _format_value(bound)
            yield "_bucket", _label_text(labels), cumulative
        labels = dict(base)
        labels["le"] = "+Inf"
        yield "_bucket", _label_text(labels), counts[-1]
        yield "_sum", _label_text(base), acc
        yield "_count", _label_text(base), total

    def snapshot_value(self) -> object:
        with self._lock:
            samples = list(self._samples)
            value = {
                "count": self._count,
                "sum": self._sum,
                "buckets": {
                    _format_value(bound): self._counts[position]
                    for position, bound in enumerate(self.buckets)
                },
            }
        value["buckets"]["+Inf"] = self._counts[-1]
        value["summary"] = latency_summary(samples)
        return value


def _key(name: str, labels: dict[str, str]) -> tuple:
    return (name, tuple(sorted(labels.items())))


class MetricsRegistry:
    """Named metric store with idempotent registration.

    ``counter``/``gauge``/``histogram`` return the existing instrument
    when called again with the same name and label set, so call sites
    can resolve their metrics inline without import-order choreography.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._metrics: dict[tuple, _Metric] = {}

    def _get_or_create(self, factory, name: str, labels, kwargs) -> _Metric:
        key = _key(name, labels or {})
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory(name, labels=dict(labels or {}), **kwargs)
                self._metrics[key] = metric
            return metric

    def counter(
        self, name: str, help_text: str = "", **labels: str
    ) -> Counter:
        metric = self._get_or_create(
            Counter, name, labels, {"help_text": help_text}
        )
        assert isinstance(metric, Counter), f"{name} is not a counter"
        return metric

    def gauge(self, name: str, help_text: str = "", **labels: str) -> Gauge:
        metric = self._get_or_create(
            Gauge, name, labels, {"help_text": help_text}
        )
        assert isinstance(metric, Gauge), f"{name} is not a gauge"
        return metric

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS,
        **labels: str,
    ) -> Histogram:
        metric = self._get_or_create(
            Histogram, name, labels,
            {"help_text": help_text, "buckets": buckets},
        )
        assert isinstance(metric, Histogram), f"{name} is not a histogram"
        return metric

    def clear(self) -> None:
        """Drop every registered metric (tests and CLI resets)."""
        with self._lock:
            self._metrics.clear()

    def metrics(self) -> list[_Metric]:
        with self._lock:
            return list(self._metrics.values())

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        seen_headers: set[str] = set()
        for metric in sorted(
            self.metrics(), key=lambda m: (m.name, sorted(m.labels.items()))
        ):
            if metric.name not in seen_headers:
                seen_headers.add(metric.name)
                if metric.help_text:
                    lines.append(f"# HELP {metric.name} {metric.help_text}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            for suffix, label_text, value in metric.expose():
                lines.append(
                    f"{metric.name}{suffix}{label_text} "
                    f"{_format_value(value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict:
        """Nested JSON-able snapshot: name -> label text -> value."""
        result: dict[str, dict] = {}
        for metric in self.metrics():
            entry = result.setdefault(
                metric.name, {"type": metric.kind, "values": {}}
            )
            entry["values"][
                _label_text(metric.labels) or "{}"
            ] = metric.snapshot_value()
        return result


#: The process-wide default registry; disabled until someone opts in.
REGISTRY = MetricsRegistry()
