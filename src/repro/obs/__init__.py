"""Unified observability: query tracing + a process-wide metrics registry.

Two complementary planes:

* **Traces** (:mod:`repro.obs.trace`) — per-query span trees with
  wall-clock and distance-computation attribution.  Open one with
  :func:`trace`; instrumented code (the HA-Index engines, the MapReduce
  runtime, the distributed pipelines) contributes spans whose op counts
  sum exactly to the engines' ``last_search_ops``.  Inspect with
  ``repro trace`` or the ``profile=`` kwarg of the search/join APIs.

* **Metrics** (:mod:`repro.obs.registry`) — long-lived counters,
  gauges and histograms with Prometheus text exposition and JSON
  snapshots, fed by the serving path and the MapReduce counters when
  :func:`set_metrics_enabled` has switched collection on.  Inspect with
  ``repro metrics``.

Both planes are **off by default** and each instrumentation site is
guarded by a single cheap probe (:func:`tracing` /
:func:`metrics_enabled`), keeping the disabled overhead under the 2%
budget measured in ``docs/observability.md``.
"""

from __future__ import annotations

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_MS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    Span,
    add_ops,
    current_span,
    last_trace,
    record_span,
    render_span_tree,
    trace,
    trace_span,
    tracing,
)

__all__ = [
    "Span",
    "trace",
    "trace_span",
    "record_span",
    "tracing",
    "current_span",
    "add_ops",
    "last_trace",
    "render_span_tree",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "registry",
    "metrics_enabled",
    "set_metrics_enabled",
    "reset",
]


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return REGISTRY


def metrics_enabled() -> bool:
    """True iff ambient metric collection is switched on."""
    return REGISTRY.enabled


def set_metrics_enabled(enabled: bool) -> None:
    """Switch ambient metric collection on or off (default off)."""
    REGISTRY.enabled = bool(enabled)


def reset() -> None:
    """Clear the default registry and disable collection (tests)."""
    REGISTRY.enabled = False
    REGISTRY.clear()


class _NullTrace:
    """Stand-in for :func:`trace` when ``profile=False``."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_TRACE = _NullTrace()


def maybe_trace(name: str, profile: bool, **attrs: object):
    """:func:`trace` when ``profile`` is true, else a no-op context.

    The backing of the ``profile=`` kwarg on the public search/join
    APIs: with ``profile=True`` the call runs under a trace whose
    finished tree is available from :func:`last_trace` (or, when a
    trace was already open, attaches as a subtree of it).
    """
    if profile:
        return trace(name, **attrs)
    return _NULL_TRACE


def note_search(engine: str, ops: int, queries: int = 1) -> None:
    """Ambient per-search metrics (no-op unless metrics are enabled)."""
    reg = REGISTRY
    if not reg.enabled:
        return
    reg.counter(
        "repro_search_total", "h-select queries executed", engine=engine
    ).inc(queries)
    reg.counter(
        "repro_search_ops_total",
        "distance computations performed by H-Search",
        engine=engine,
    ).inc(ops)
