"""Non-paper query engines, registered in :mod:`repro.core.engines`."""
