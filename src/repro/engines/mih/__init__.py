"""Multi-Index Hashing engine (registry name ``mih``)."""

from repro.engines.mih.index import MIHIndex, default_num_tables

__all__ = ["MIHIndex", "default_num_tables"]
