"""Multi-Index Hashing: exact Hamming select and kNN over substring tables.

The state-of-the-art exact competitor to the HA-Index (Norouzi, Punjani
and Fleet, "Fast Search in Hamming Space with Multi-Index Hashing").
Every q-bit code is split into ``m`` disjoint substrings and each
substring indexed in its own table.  The pigeonhole argument behind
exactness: if two codes differ in at most ``r`` bits, the differences
spread over the ``m`` substrings, so in at least one table the query's
substring is within ``floor(r / m)`` bit flips of the stored one.  A
select therefore probes every table with all perturbations of the query
substring up to radius ``floor(r / m)``, unions the bucket contents,
and verifies each candidate with one full XOR + popcount — no false
negatives by the pigeonhole bound, no false positives after
verification.

This implementation keeps each table as a *sorted key array* instead of
a hash map: candidate generation XORs the query substring against a
cached array of perturbation masks (one array per (width, radius)) and
resolves every probe with two ``np.searchsorted`` calls, so a whole
table sweep is a handful of numpy operations.  Verification gathers the
candidate rows from the packed ``uint64`` code matrix and runs the
shared ``popcount64`` kernel — the same exact-XOR path the flat HA
plane uses.  ``last_search_ops`` counts the verified candidates, the
structural work the paper's benchmarks compare.

kNN needs no threshold guess: :meth:`MIHIndex.knn_search` grows the
per-table radius ``r'`` one step at a time.  After finishing radius
``r'`` every unseen code differs from the query by at least ``r' + 1``
bits in *every* substring, hence by at least ``m * (r' + 1)`` bits in
total — so the verified set is complete up to distance
``m * (r' + 1) - 1`` and the loop stops as soon as ``k`` verified
neighbors fall inside that guarantee (progressive radius expansion).

Mutations are swap-remove on a row store (codes/ids lists plus a
``(code, id) -> rows`` map), with the numpy layout rebuilt lazily the
first time a query runs after a mutation.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations
from math import comb
from time import perf_counter
from typing import Sequence

import numpy as np

from repro.baselines.multi_hash import block_boundaries, probe_count
from repro.core.bitvector import pack_codes_wide, popcount64
from repro.core.errors import IndexStateError, InvalidParameterError
from repro.core.flat_ha import _expand_ranges
from repro.core.index_base import HammingIndex, IndexStats
from repro.obs import note_search
from repro.obs.trace import record_span, trace_span

#: Minimum target substring width when ``num_tables`` is not given.
#: With no corpus-size hint, 8-bit keys keep at most 256 buckets per
#: table, so even radius-2 probe sets stay tiny.  When the corpus size
#: ``n`` is known, the classic MIH tuning applies instead: substrings of
#: ``~log2(n)`` bits make the expected bucket occupancy ``n / 2^width``
#: about one row, which is what keeps the candidate union thin on
#: *clustered* corpora (narrow substrings over correlated codes collapse
#: into a few huge buckets and the probe degenerates toward a scan).
DEFAULT_SUBSTRING_BITS = 8


def default_num_tables(
    code_length: int, expected_size: int | None = None
) -> int:
    """Table count targeting ``max(8, log2 n)``-bit substrings.

    Without ``expected_size`` this falls back to ~8-bit substrings.
    Substring keys must fit one ``uint64`` word, so at least
    ``ceil(q / 64)`` tables are required; at most ``q`` are possible.
    """
    if expected_size is not None and expected_size > 1:
        width = max(
            DEFAULT_SUBSTRING_BITS, (expected_size - 1).bit_length()
        )
        tables = max(1, round(code_length / width))
    else:
        tables = max(1, code_length // DEFAULT_SUBSTRING_BITS)
    return min(code_length, max(tables, (code_length + 63) // 64))


@lru_cache(maxsize=None)
def _masks_at(width: int, flips: int) -> np.ndarray:
    """All ``width``-bit XOR masks with exactly ``flips`` set bits."""
    values = []
    for positions in combinations(range(width), flips):
        mask = 0
        for position in positions:
            mask |= 1 << position
        values.append(mask)
    masks = np.array(values, dtype=np.uint64)
    masks.setflags(write=False)
    return masks


@lru_cache(maxsize=None)
def _masks_within(width: int, radius: int) -> np.ndarray:
    """All ``width``-bit XOR masks with at most ``radius`` set bits."""
    masks = np.concatenate(
        [_masks_at(width, flips) for flips in range(min(radius, width) + 1)]
    )
    masks.setflags(write=False)
    return masks


class MIHIndex(HammingIndex):
    """Exact Multi-Index Hashing over ``m`` sorted substring tables.

    Args:
        code_length: bit length of the indexed codes.
        num_tables: substring count ``m``; defaults to ~8-bit
            substrings (:func:`default_num_tables`).  Widths follow
            :func:`~repro.baselines.multi_hash.block_boundaries` (they
            differ by at most one bit) and must each fit in 64 bits.

    Implements the full :class:`HammingIndex` contract plus the richer
    entry points the front-ends and service planes duck-type:
    ``search_with_distances``, ``search_codes``, ``contains_within``,
    ``count_within``, the batched ``search_batch`` /
    ``search_codes_batch`` sweeps, and the native :meth:`knn_search`
    that :func:`repro.core.knn.knn_select` dispatches to.
    """

    def __init__(
        self, code_length: int, num_tables: int | None = None
    ) -> None:
        super().__init__(code_length)
        if num_tables is None:
            num_tables = default_num_tables(code_length)
        if not 1 <= num_tables <= code_length:
            raise InvalidParameterError(
                f"need 1 <= num_tables <= code length, got "
                f"{num_tables}/{code_length}"
            )
        self._boundaries = block_boundaries(code_length, num_tables)
        if any(width > 64 for _, width in self._boundaries):
            raise InvalidParameterError(
                f"{num_tables} tables over {code_length} bits give "
                "substrings wider than 64 bits; use more tables"
            )
        self._codes: list[int] = []
        self._ids: list[int] = []
        #: (code, tuple_id) -> row positions (duplicates keep several).
        self._row_map: dict[tuple[int, int], list[int]] = {}
        self._packed: np.ndarray | None = None
        self._layout_mutations = -1

    # -- introspection -----------------------------------------------------

    @property
    def num_tables(self) -> int:
        return len(self._boundaries)

    @property
    def substring_widths(self) -> list[int]:
        return [width for _, width in self._boundaries]

    @property
    def keeps_ids(self) -> bool:
        return True

    # -- maintenance -------------------------------------------------------

    @classmethod
    def build(cls, codes, **params) -> "MIHIndex":
        """Build over ``codes``, sizing the tables to the corpus.

        When ``num_tables`` is not given, the substring width targets
        ``max(8, log2 n)`` so expected bucket occupancy stays around
        one row (see :func:`default_num_tables`).
        """
        params.setdefault(
            "num_tables", default_num_tables(codes.length, len(codes))
        )
        return super().build(codes, **params)

    def _bulk_load(self, codes) -> None:
        for code, tuple_id in zip(codes.codes, codes.ids):
            self._check_query(code, 0)
            self._append_row(code, tuple_id)

    def _append_row(self, code: int, tuple_id: int) -> None:
        self._row_map.setdefault((code, tuple_id), []).append(
            len(self._codes)
        )
        self._codes.append(code)
        self._ids.append(tuple_id)
        self._size += 1

    def insert(self, code: int, tuple_id: int) -> None:
        self._check_query(code, 0)
        self._append_row(code, tuple_id)
        self._note_mutation()

    def delete(self, code: int, tuple_id: int) -> None:
        self._check_query(code, 0)
        entry = (code, tuple_id)
        rows = self._row_map.get(entry)
        if not rows:
            raise IndexStateError(
                f"tuple {tuple_id} with code {code:#x} not present"
            )
        row = rows.pop()
        if not rows:
            del self._row_map[entry]
        last = len(self._codes) - 1
        if row != last:
            # Swap-remove: the tail row moves into the vacated slot.
            moved = (self._codes[last], self._ids[last])
            self._codes[row] = moved[0]
            self._ids[row] = moved[1]
            moved_rows = self._row_map[moved]
            moved_rows[moved_rows.index(last)] = row
        self._codes.pop()
        self._ids.pop()
        self._size -= 1
        self._note_mutation()

    def ids_for_code(self, code: int) -> set[int]:
        """Tuple ids currently stored under ``code``."""
        return {
            tuple_id
            for (stored, tuple_id) in self._row_map
            if stored == code
        }

    # -- layout ------------------------------------------------------------

    def _refresh_layout(self) -> None:
        """(Re)build the packed matrix and sorted key arrays lazily."""
        if (
            self._layout_mutations == self.mutation_count
            and self._packed is not None
        ):
            return
        self._packed = pack_codes_wide(self._codes, self._code_length)
        self._ids_arr = np.asarray(self._ids, dtype=np.int64)
        column = (
            np.array(self._codes, dtype=object) if self._codes else None
        )
        sorted_keys: list[np.ndarray] = []
        sorted_rows: list[np.ndarray] = []
        for shift, width in self._boundaries:
            if column is None:
                keys = np.empty(0, dtype=np.uint64)
            else:
                keys = (
                    (column >> shift) & ((1 << width) - 1)
                ).astype(np.uint64)
            order = np.argsort(keys, kind="stable").astype(np.int64)
            sorted_keys.append(keys[order])
            sorted_rows.append(order)
        self._sorted_keys = sorted_keys
        self._sorted_rows = sorted_rows
        self._layout_mutations = self.mutation_count

    def _query_words(self, query: int) -> np.ndarray:
        return pack_codes_wide([query], self._code_length)[0]

    @staticmethod
    def _sub_key(query: int, shift: int, width: int) -> np.uint64:
        return np.uint64((query >> shift) & ((1 << width) - 1))

    # -- candidate generation ----------------------------------------------

    def _table_rows(
        self, table: int, query: int, masks: np.ndarray
    ) -> np.ndarray:
        """Rows of one table whose key is ``query_key ^ mask`` for any
        mask — two searchsorted calls resolve the whole probe array."""
        shift, width = self._boundaries[table]
        probes = self._sub_key(query, shift, width) ^ masks
        keys = self._sorted_keys[table]
        lo = np.searchsorted(keys, probes, side="left")
        hi = np.searchsorted(keys, probes, side="right")
        positions = _expand_ranges(lo, hi - lo)
        if not positions.size:
            return positions
        return self._sorted_rows[table][positions]

    def _candidate_rows(self, query: int, threshold: int) -> np.ndarray:
        """Union of bucket rows across tables at radius ``floor(r/m)``.

        Complete by the pigeonhole bound.  When the enumeration would
        touch at least as many buckets as there are rows, probing is
        strictly worse than verifying everything, so the sweep degrades
        to the exact scan (same guard policy as the MH baseline).
        """
        n = len(self._codes)
        if not n:
            return np.empty(0, dtype=np.int64)
        radius = threshold // len(self._boundaries)
        total_probes = sum(
            probe_count(width, min(radius, width))
            for _, width in self._boundaries
        )
        if total_probes >= n:
            return np.arange(n, dtype=np.int64)
        parts = [
            rows
            for table, (_, width) in enumerate(self._boundaries)
            if (
                rows := self._table_rows(
                    table, query, _masks_within(width, radius)
                )
            ).size
        ]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))

    def _verify(
        self, rows: np.ndarray, qwords: np.ndarray, threshold: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact XOR verification; returns (qualifying rows, distances)."""
        if not rows.size:
            return rows, np.empty(0, dtype=np.int64)
        distances = popcount64(self._packed[rows] ^ qwords).sum(
            axis=1, dtype=np.int64
        )
        near = distances <= threshold
        return rows[near], distances[near]

    def _query_rows(
        self, query: int, threshold: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """One full select: probe, then verify; sets ``last_search_ops``."""
        self._refresh_layout()
        started = perf_counter()
        candidates = self._candidate_rows(query, threshold)
        record_span(
            "mih.probe",
            perf_counter() - started,
            ops=0,
            candidates=int(candidates.size),
        )
        started = perf_counter()
        self.last_search_ops = int(candidates.size)
        rows, distances = self._verify(
            candidates, self._query_words(query), threshold
        )
        record_span(
            "mih.verify", perf_counter() - started, ops=self.last_search_ops
        )
        return rows, distances

    # -- queries -----------------------------------------------------------

    def search(self, query: int, threshold: int) -> list[int]:
        self._check_query(query, threshold)
        with trace_span("h_search", engine="mih", threshold=threshold):
            rows, _ = self._query_rows(query, threshold)
            results = self._ids_arr[rows].tolist()
        note_search("mih", self.last_search_ops)
        return results

    def search_with_distances(
        self, query: int, threshold: int
    ) -> list[tuple[int, int]]:
        """(tuple id, exact distance) pairs; used by the kNN front-end."""
        self._check_query(query, threshold)
        with trace_span("h_search", engine="mih", threshold=threshold):
            rows, distances = self._query_rows(query, threshold)
            pairs = list(
                zip(self._ids_arr[rows].tolist(), distances.tolist())
            )
        note_search("mih", self.last_search_ops)
        return pairs

    def search_codes(self, query: int, threshold: int) -> list[int]:
        """Distinct qualifying codes (the self-join probe entry point)."""
        self._check_query(query, threshold)
        with trace_span("h_search", engine="mih", threshold=threshold):
            rows, _ = self._query_rows(query, threshold)
            codes = sorted({self._codes[row] for row in rows.tolist()})
        note_search("mih", self.last_search_ops)
        return codes

    def count_within(self, query: int, threshold: int) -> int:
        self._check_query(query, threshold)
        rows, _ = self._query_rows(query, threshold)
        return int(rows.size)

    def contains_within(self, query: int, threshold: int) -> bool:
        self._check_query(query, threshold)
        rows, _ = self._query_rows(query, threshold)
        return bool(rows.size)

    # -- batched sweeps ----------------------------------------------------

    def _batch_rows(
        self, queries: list[int], threshold: int
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Per-query (qualifying rows, distances); one verification pass.

        Candidates of the whole batch are verified in a single gathered
        XOR + popcount over (row, query) pairs, then split back per
        query; ``last_search_ops`` totals the batch.
        """
        self._refresh_layout()
        started = perf_counter()
        candidates = [
            self._candidate_rows(query, threshold) for query in queries
        ]
        record_span(
            "mih.probe",
            perf_counter() - started,
            ops=0,
            candidates=int(sum(c.size for c in candidates)),
        )
        started = perf_counter()
        self.last_search_ops = int(sum(c.size for c in candidates))
        qmat = pack_codes_wide(queries, self._code_length)
        if self.last_search_ops:
            all_rows = np.concatenate(candidates)
            owners = np.repeat(
                np.arange(len(queries), dtype=np.int64),
                [c.size for c in candidates],
            )
            distances = popcount64(
                self._packed[all_rows] ^ qmat[owners]
            ).sum(axis=1, dtype=np.int64)
            near = distances <= threshold
            bounds = np.cumsum([0] + [c.size for c in candidates])
            rows_out, dists_out = [], []
            for position in range(len(queries)):
                lo, hi = bounds[position], bounds[position + 1]
                keep = near[lo:hi]
                rows_out.append(all_rows[lo:hi][keep])
                dists_out.append(distances[lo:hi][keep])
        else:
            empty_rows = np.empty(0, dtype=np.int64)
            rows_out = [empty_rows] * len(queries)
            dists_out = [empty_rows] * len(queries)
        record_span(
            "mih.verify", perf_counter() - started, ops=self.last_search_ops
        )
        return rows_out, dists_out

    def search_batch(
        self, queries: Sequence[int], threshold: int
    ) -> list[list[int]]:
        """Exact Hamming-select for every query of a batch at once."""
        queries = list(queries)
        for query in queries:
            self._check_query(query, threshold)
        if not queries:
            return []
        with trace_span(
            "h_search", engine="mih", batch=len(queries),
            threshold=threshold,
        ):
            rows_out, _ = self._batch_rows(queries, threshold)
            results = [
                self._ids_arr[rows].tolist() for rows in rows_out
            ]
        note_search("mih", self.last_search_ops, queries=len(queries))
        return results

    def search_codes_batch(
        self, queries: Sequence[int], threshold: int
    ) -> list[list[int]]:
        """Distinct qualifying codes for every query of a batch."""
        queries = list(queries)
        for query in queries:
            self._check_query(query, threshold)
        if not queries:
            return []
        with trace_span(
            "h_search", engine="mih", batch=len(queries),
            threshold=threshold,
        ):
            rows_out, _ = self._batch_rows(queries, threshold)
            results = [
                sorted({self._codes[row] for row in rows.tolist()})
                for rows in rows_out
            ]
        note_search("mih", self.last_search_ops, queries=len(queries))
        return results

    # -- native progressive-radius kNN -------------------------------------

    def knn_search(self, query: int, k: int) -> list[tuple[int, int]]:
        """Exact kNN as (tuple id, distance), sorted by (distance, id).

        Identical to running the expanding-threshold front-end over
        this index: both return the ``k`` smallest (distance, id) pairs
        of the full ranking, because the per-round guarantee makes the
        verified set complete up to ``m * (r' + 1) - 1`` and the loop
        only stops once ``k`` verified neighbors sit inside it.
        """
        if k < 1:
            raise InvalidParameterError("k must be positive")
        self._check_query(query, 0)
        self._refresh_layout()
        n = len(self._codes)
        if not n:
            self.last_search_ops = 0
            return []
        num_tables = len(self._boundaries)
        target = min(k, n)
        qwords = self._query_words(query)
        seen = np.zeros(n, dtype=bool)
        distances = np.zeros(n, dtype=np.int64)
        ops = 0
        radius = 0
        started = perf_counter()
        with trace_span("h_search", engine="mih", knn=k):
            while True:
                remaining = int(n - seen.sum())
                round_probes = sum(
                    comb(width, radius) for _, width in self._boundaries
                )
                if round_probes >= remaining:
                    # Cheaper to verify every unseen row than to walk
                    # the bucket enumeration; finishes the search.
                    rows = np.flatnonzero(~seen)
                else:
                    parts = [
                        rows
                        for table, (_, width) in enumerate(
                            self._boundaries
                        )
                        if radius <= width
                        and (
                            rows := self._table_rows(
                                table, query, _masks_at(width, radius)
                            )
                        ).size
                    ]
                    rows = (
                        np.unique(np.concatenate(parts))
                        if parts
                        else np.empty(0, dtype=np.int64)
                    )
                    rows = rows[~seen[rows]] if rows.size else rows
                if rows.size:
                    ops += int(rows.size)
                    distances[rows] = popcount64(
                        self._packed[rows] ^ qwords
                    ).sum(axis=1, dtype=np.int64)
                    seen[rows] = True
                # Everything within m*(radius+1)-1 is now verified.
                guaranteed = num_tables * (radius + 1) - 1
                if bool(seen.all()) or guaranteed >= self._code_length:
                    break
                if int((distances[seen] <= guaranteed).sum()) >= target:
                    break
                radius += 1
            self.last_search_ops = ops
            record_span("mih.verify", perf_counter() - started, ops=ops)
            rows = np.flatnonzero(seen)
            order = np.lexsort(
                (self._ids_arr[rows], distances[rows])
            )
            top = rows[order[:k]]
            pairs = list(
                zip(
                    self._ids_arr[top].tolist(),
                    distances[top].tolist(),
                )
            )
        note_search("mih", ops)
        return pairs

    # -- accounting --------------------------------------------------------

    def stats(self) -> IndexStats:
        self._refresh_layout()
        nodes = sum(
            int(np.unique(keys).size) for keys in self._sorted_keys
        )
        entries = self._size * len(self._boundaries)
        return IndexStats(
            nodes=nodes,
            edges=entries,
            entries=entries,
            code_bits=self._size * self._code_length,
        )
