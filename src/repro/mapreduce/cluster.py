"""Simulated cluster: workers and the distributed cache.

The paper runs on "a cluster of 16 nodes"; here a :class:`Cluster` is a
worker count plus a distributed cache.  Broadcasting an object through
the cache (the pivots, the learned hash function, the global HA-Index)
charges its serialized size once per worker to the job counters —
matching the paper's accounting, where duplicating table R to each server
costs ``O(m N d)`` shuffle (Section 5.4).
"""

from __future__ import annotations

from typing import Any

from repro.core.errors import InvalidParameterError
from repro.mapreduce.counters import BROADCAST_BYTES, Counters
from repro.mapreduce.types import object_bytes

#: The paper's cluster size.
DEFAULT_NUM_WORKERS = 16

#: Modelled effective shuffle/broadcast throughput.  Hadoop-era shuffles
#: spill to disk and cross a shared network; 10 MiB/s of effective
#: cluster-wide throughput (the paper's Hadoop 0.22 on 2007 Xeons) is
#: the knob that turns metered bytes into the transfer component of the
#: simulated wall clock.
DEFAULT_BANDWIDTH_BYTES_PER_SECOND = 10 * 1024 * 1024


class Cluster:
    """A fixed pool of simulated workers with a distributed cache."""

    def __init__(
        self,
        num_workers: int = DEFAULT_NUM_WORKERS,
        bandwidth_bytes_per_second: float = DEFAULT_BANDWIDTH_BYTES_PER_SECOND,
    ) -> None:
        if num_workers < 1:
            raise InvalidParameterError("num_workers must be positive")
        if bandwidth_bytes_per_second <= 0:
            raise InvalidParameterError("bandwidth must be positive")
        self._num_workers = num_workers
        self._bandwidth = bandwidth_bytes_per_second
        self._cache: dict[str, Any] = {}
        self._pending_broadcast_bytes = 0
        self.counters = Counters()

    @property
    def num_workers(self) -> int:
        return self._num_workers

    @property
    def bandwidth_bytes_per_second(self) -> float:
        return self._bandwidth

    def transfer_seconds(self, num_bytes: int) -> float:
        """Modelled time to move ``num_bytes`` through the cluster."""
        return num_bytes / self._bandwidth

    def broadcast(self, name: str, obj: Any) -> None:
        """Place ``obj`` in the distributed cache of every worker.

        The serialized size is charged once per worker, both to the
        byte counters and to the pending-transfer pool that the next job
        run folds into its simulated wall clock (broadcasting the whole
        index — Option A, Section 5.4 — is not free in time).
        """
        self._cache[name] = obj
        charged = object_bytes(obj) * self._num_workers
        self.counters.add(BROADCAST_BYTES, charged)
        self._pending_broadcast_bytes += charged

    def take_pending_broadcast_bytes(self) -> int:
        """Drain broadcast bytes not yet charged to any job's wall clock."""
        pending = self._pending_broadcast_bytes
        self._pending_broadcast_bytes = 0
        return pending

    def cached(self, name: str) -> Any:
        """Fetch a broadcast object by name; raises if absent."""
        if name not in self._cache:
            raise InvalidParameterError(
                f"nothing broadcast under {name!r}"
            )
        return self._cache[name]

    def clear_cache(self) -> None:
        self._cache.clear()
