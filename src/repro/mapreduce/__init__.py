"""An in-process MapReduce runtime with honest shuffle metering."""

from repro.mapreduce.cluster import DEFAULT_NUM_WORKERS, Cluster
from repro.mapreduce.counters import (
    BROADCAST_BYTES,
    MAP_INPUT_RECORDS,
    REDUCE_OUTPUT_RECORDS,
    SHUFFLE_BYTES,
    SHUFFLE_RECORDS,
    Counters,
)
from repro.mapreduce.hashjoin import mapreduce_hash_join
from repro.mapreduce.job import MapReduceJob, TaskContext
from repro.mapreduce.partitioner import RangePartitioner, hash_partitioner
from repro.mapreduce.runtime import JobResult, MapReduceRuntime
from repro.mapreduce.types import InputSplit, make_splits, record_bytes

__all__ = [
    "DEFAULT_NUM_WORKERS",
    "Cluster",
    "BROADCAST_BYTES",
    "MAP_INPUT_RECORDS",
    "REDUCE_OUTPUT_RECORDS",
    "SHUFFLE_BYTES",
    "SHUFFLE_RECORDS",
    "Counters",
    "mapreduce_hash_join",
    "MapReduceJob",
    "TaskContext",
    "RangePartitioner",
    "hash_partitioner",
    "JobResult",
    "MapReduceRuntime",
    "InputSplit",
    "make_splits",
    "record_bytes",
]
