"""An in-process MapReduce runtime with honest shuffle metering."""

from repro.mapreduce.checkpoint import (
    STAGE_INDEX_BUILD,
    STAGE_PREPROCESS,
    CheckpointStore,
    fingerprint_parts,
    fingerprint_records,
)
from repro.mapreduce.cluster import DEFAULT_NUM_WORKERS, Cluster
from repro.mapreduce.counters import (
    BACKOFF_SECONDS,
    BROADCAST_BYTES,
    CHECKPOINT_RESTORES,
    MAP_INPUT_RECORDS,
    REDUCE_OUTPUT_RECORDS,
    SHUFFLE_BYTES,
    SHUFFLE_RECORDS,
    TASK_RETRIES,
    TASK_SPECULATIVE,
    WORKERS_BLACKLISTED,
    WORKERS_LOST,
    Counters,
)
from repro.mapreduce.faults import ChaosPolicy, FaultPlan, hash_unit
from repro.mapreduce.hashjoin import mapreduce_hash_join
from repro.mapreduce.job import MapReduceJob, TaskContext
from repro.mapreduce.partitioner import RangePartitioner, hash_partitioner
from repro.mapreduce.runtime import JobResult, MapReduceRuntime
from repro.mapreduce.types import InputSplit, make_splits, record_bytes

__all__ = [
    "DEFAULT_NUM_WORKERS",
    "Cluster",
    "BACKOFF_SECONDS",
    "BROADCAST_BYTES",
    "CHECKPOINT_RESTORES",
    "MAP_INPUT_RECORDS",
    "REDUCE_OUTPUT_RECORDS",
    "SHUFFLE_BYTES",
    "SHUFFLE_RECORDS",
    "TASK_RETRIES",
    "TASK_SPECULATIVE",
    "WORKERS_BLACKLISTED",
    "WORKERS_LOST",
    "Counters",
    "ChaosPolicy",
    "FaultPlan",
    "hash_unit",
    "CheckpointStore",
    "STAGE_INDEX_BUILD",
    "STAGE_PREPROCESS",
    "fingerprint_parts",
    "fingerprint_records",
    "mapreduce_hash_join",
    "MapReduceJob",
    "TaskContext",
    "RangePartitioner",
    "hash_partitioner",
    "JobResult",
    "MapReduceRuntime",
    "InputSplit",
    "make_splits",
    "record_bytes",
]
