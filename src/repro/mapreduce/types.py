"""Record types and size accounting for the MapReduce substrate.

The simulator moves plain ``(key, value)`` pairs.  Shuffle-cost metering —
the quantity Figure 7 plots — needs a byte size for every record crossing
the mapper/reducer boundary; :func:`record_bytes` uses the pickled size,
which is what a Hadoop job would serialize to disk between phases.
"""

from __future__ import annotations

import pickle
from typing import Any, Iterable, Iterator

#: A (key, value) pair as produced by mappers and reducers.
KeyValue = tuple[Any, Any]


def record_bytes(record: KeyValue) -> int:
    """Serialized size in bytes of one key-value record."""
    return len(pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL))


def object_bytes(obj: Any) -> int:
    """Serialized size in bytes of an arbitrary broadcast object."""
    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


class InputSplit:
    """A contiguous chunk of job input processed by one map task."""

    __slots__ = ("split_id", "records")

    def __init__(self, split_id: int, records: list[KeyValue]) -> None:
        self.split_id = split_id
        self.records = records

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[KeyValue]:
        return iter(self.records)

    def __repr__(self) -> str:
        return f"InputSplit(id={self.split_id}, n={len(self.records)})"


def make_splits(
    records: Iterable[KeyValue], num_splits: int
) -> list[InputSplit]:
    """Partition ``records`` into ``num_splits`` balanced input splits.

    Round-robin assignment keeps split sizes within one record of each
    other regardless of input order.
    """
    materialized = list(records)
    num_splits = max(1, min(num_splits, max(1, len(materialized))))
    buckets: list[list[KeyValue]] = [[] for _ in range(num_splits)]
    for position, record in enumerate(materialized):
        buckets[position % num_splits].append(record)
    return [
        InputSplit(split_id, bucket)
        for split_id, bucket in enumerate(buckets)
    ]
