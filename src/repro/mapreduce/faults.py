"""Deterministic fault injection for the simulated MapReduce cluster.

MapReduce is "a reliable distributed computing model" (Section 1)
because failed tasks are simply re-executed; to *prove* that the
distributed pipelines are fault-transparent (same results under chaos as
fault-free) the runtime needs a way to inject failures on demand.  This
module provides it:

* :class:`ChaosPolicy` — a declarative, seeded fault model: per-attempt
  crash probability, permanent worker death, straggler slowdown factors
  (random or pinned to specific slow workers) and transient
  distributed-cache fetch failures.
* :class:`FaultPlan` — the oracle the runtime consults on every task
  attempt.  Every decision is a pure function of the policy seed and the
  attempt coordinates ``(job, kind, task, attempt, worker)``, so a chaos
  run is exactly reproducible regardless of scheduling order, and two
  runs with the same seed inject the identical fault sequence.

The injected faults only ever discard or slow down *attempts*; because
map/reduce attempts are side-effect free, the job output is provably
identical to a fault-free run (asserted in ``tests/test_chaos.py``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.core.errors import InvalidParameterError


def hash_unit(seed: int, *parts: object) -> float:
    """Deterministic uniform draw in ``[0, 1)`` from ``seed`` and ``parts``.

    Used instead of a stateful RNG so every fault decision depends only
    on *what* is being decided, never on how many decisions came before.
    """
    payload = ":".join([str(seed), *map(str, parts)]).encode()
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass(frozen=True)
class ChaosPolicy:
    """Declarative fault model for a simulated cluster run.

    Attributes:
        seed: base seed; two plans with equal seeds and probabilities
            inject the identical fault sequence.
        crash_prob: probability that any single task attempt crashes
            after doing its work (the attempt's time is charged, its
            output discarded, and the task retried with backoff).
        worker_death_prob: probability, evaluated per attempt, that the
            attempt's worker dies *permanently*; the task is rescheduled
            onto a survivor without consuming its attempt budget.
        straggler_prob: probability that a given (task, worker) pairing
            runs slowed by ``straggler_factor``.
        straggler_factor: simulated-time multiplier for straggler
            attempts (>= 1); also applied to every attempt placed on a
            worker listed in ``slow_workers``.
        broadcast_failure_prob: probability that one distributed-cache
            fetch inside an attempt fails transiently (the attempt fails
            and is retried).
        slow_workers: workers that are *always* slowed by
            ``straggler_factor`` — the classic degraded-node scenario
            speculative execution exists for.
        crash_jobs: job names whose every attempt crashes — a targeted
            chaos switch used to force mid-pipeline aborts in tests.
    """

    seed: int = 0
    crash_prob: float = 0.0
    worker_death_prob: float = 0.0
    straggler_prob: float = 0.0
    straggler_factor: float = 1.0
    broadcast_failure_prob: float = 0.0
    slow_workers: tuple[int, ...] = ()
    crash_jobs: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for name in (
            "crash_prob",
            "worker_death_prob",
            "straggler_prob",
            "broadcast_failure_prob",
        ):
            probability = getattr(self, name)
            if not 0.0 <= probability <= 1.0:
                raise InvalidParameterError(
                    f"{name} must be within [0, 1], got {probability}"
                )
        if self.straggler_factor < 1.0:
            raise InvalidParameterError(
                "straggler_factor must be >= 1 (a slowdown multiplier)"
            )

    @property
    def enabled(self) -> bool:
        """Whether this policy can inject any fault at all."""
        return bool(
            self.crash_prob
            or self.worker_death_prob
            or self.broadcast_failure_prob
            or self.crash_jobs
            or (
                self.straggler_factor > 1.0
                and (self.straggler_prob or self.slow_workers)
            )
        )


class FaultPlan:
    """Seeded oracle the runtime consults on every task attempt."""

    def __init__(self, policy: ChaosPolicy) -> None:
        self.policy = policy

    def crashes(self, job: str, kind: str, task_id: int, attempt: int) -> bool:
        """Does this attempt crash after doing its work?"""
        if job in self.policy.crash_jobs:
            return True
        probability = self.policy.crash_prob
        if probability <= 0.0:
            return False
        return (
            hash_unit(self.policy.seed, "crash", job, kind, task_id, attempt)
            < probability
        )

    def worker_dies(
        self, job: str, kind: str, task_id: int, attempt: int, worker: int
    ) -> bool:
        """Does the attempt's worker die permanently during this attempt?"""
        probability = self.policy.worker_death_prob
        if probability <= 0.0:
            return False
        return (
            hash_unit(
                self.policy.seed, "death", job, kind, task_id, attempt, worker
            )
            < probability
        )

    def straggler_multiplier(
        self, job: str, kind: str, task_id: int, worker: int
    ) -> float:
        """Simulated-time multiplier for this (task, worker) pairing."""
        if self.policy.straggler_factor <= 1.0:
            return 1.0
        if worker in self.policy.slow_workers:
            return self.policy.straggler_factor
        probability = self.policy.straggler_prob
        if probability > 0.0 and (
            hash_unit(self.policy.seed, "straggler", job, kind, task_id, worker)
            < probability
        ):
            return self.policy.straggler_factor
        return 1.0

    def broadcast_fetch_fails(
        self, job: str, kind: str, task_id: int, attempt: int, name: str
    ) -> bool:
        """Does this attempt's fetch of cache object ``name`` fail?"""
        probability = self.policy.broadcast_failure_prob
        if probability <= 0.0:
            return False
        return (
            hash_unit(
                self.policy.seed, "fetch", job, kind, task_id, attempt, name
            )
            < probability
        )
