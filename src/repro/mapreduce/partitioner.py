"""Partitioners: how intermediate keys are assigned to reducers.

The default is Hadoop's hash partitioning.  The paper's load-balancing
contribution (Section 5.1) is the *range* partitioner over Gray ranks
driven by sampled pivots, implemented here as
:class:`RangePartitioner`; pivot selection itself lives in
``repro.distributed.pivots``.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Callable, Sequence

from repro.core.errors import InvalidParameterError

#: A partitioner maps (key, number of partitions) to a partition id.
Partitioner = Callable[[Any, int], int]


def hash_partitioner(key: Any, num_partitions: int) -> int:
    """Deterministic hash partitioning (Python hash is salted for str,
    so keys are converted through ``repr`` for run-to-run stability)."""
    if isinstance(key, int):
        return key % num_partitions
    return sum(repr(key).encode()) % num_partitions


class RangePartitioner:
    """Route ordered keys into pivot-delimited ranges.

    ``pivots`` are the interior boundaries in ascending order; a key goes
    to partition ``i`` when ``pivots[i-1] <= key < pivots[i]``, giving
    ``len(pivots) + 1`` partitions.  With pivots chosen from an
    equi-depth histogram of a sample, partitions receive approximately
    equal tuple counts — the paper's skew handling.
    """

    def __init__(self, pivots: Sequence[int]) -> None:
        ordered = list(pivots)
        if any(b < a for a, b in zip(ordered, ordered[1:])):
            raise InvalidParameterError("pivots must be non-decreasing")
        self._pivots = ordered

    @property
    def num_partitions(self) -> int:
        return len(self._pivots) + 1

    @property
    def pivots(self) -> list[int]:
        return list(self._pivots)

    def __call__(self, key: Any, num_partitions: int) -> int:
        partition = bisect_right(self._pivots, key)
        return min(partition, num_partitions - 1)

    def intervals(self, upper: int, lower: int = 0) -> list[tuple[int, int]]:
        """Half-open key intervals ``[lo, hi)``, one per partition.

        ``lower``/``upper`` bound the key space (``0`` and ``2**bits``
        for Gray ranks).  Pivots are clamped into ``[lower, upper]`` so
        a partition whose pivot falls outside the key space simply
        comes out empty.  The serving layer's scatter-gather planner
        prunes shards by intersecting these intervals with each query's
        Hamming ball.
        """
        bounds = [
            lower,
            *(min(max(pivot, lower), upper) for pivot in self._pivots),
            upper,
        ]
        return list(zip(bounds, bounds[1:]))
