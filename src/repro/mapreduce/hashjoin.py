"""Repartition hash join on MapReduce (Blanas et al., SIGMOD 2010).

Option B of the paper's Hamming-join returns qualifying *binary codes*
and needs a post-processing join to recover tuple ids: "if Dataset R is
too large to fit in memory, MapReduce hash-join [23] for Dataset R and
the qualifying binaries is applied" (Section 5.3).  This is that join —
the standard repartition join: both inputs are tagged, shuffled on the
join key, and matched within each reduce group.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.mapreduce.job import MapReduceJob, TaskContext
from repro.mapreduce.runtime import JobResult, MapReduceRuntime
from repro.mapreduce.types import KeyValue

_LEFT_TAG = 0
_RIGHT_TAG = 1


def _tagging_mapper(key: Any, value: Any, _: TaskContext) -> Iterator[KeyValue]:
    # Inputs arrive pre-tagged as (join key, (tag, payload)).
    yield key, value


def _matching_reducer(
    key: Any, values: list[Any], _: TaskContext
) -> Iterator[KeyValue]:
    left_payloads = [p for tag, p in values if tag == _LEFT_TAG]
    right_payloads = [p for tag, p in values if tag == _RIGHT_TAG]
    for left in left_payloads:
        for right in right_payloads:
            yield key, (left, right)


def mapreduce_hash_join(
    runtime: MapReduceRuntime,
    left: list[tuple[Any, Any]],
    right: list[tuple[Any, Any]],
    name: str = "hash-join",
) -> JobResult:
    """Equi-join two (key, payload) record lists.

    Output records are ``(key, (left payload, right payload))`` for every
    matching combination.
    """
    tagged: list[KeyValue] = [
        (key, (_LEFT_TAG, payload)) for key, payload in left
    ]
    tagged.extend((key, (_RIGHT_TAG, payload)) for key, payload in right)
    job = MapReduceJob(
        name=name, mapper=_tagging_mapper, reducer=_matching_reducer
    )
    return runtime.run(job, tagged)
