"""MapReduce job specification.

A job is a mapper, an optional combiner, a reducer and a partitioner.
Mappers and reducers are generator functions receiving a
:class:`TaskContext`, which exposes the cluster's distributed cache and
per-task counters — the same facilities the paper's jobs rely on
("the selected pivots Pv and the learned hash function H are loaded into
memory in each mapper via distributed cache").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.core.errors import JobConfigurationError
from repro.mapreduce.counters import Counters
from repro.mapreduce.partitioner import Partitioner, hash_partitioner
from repro.mapreduce.types import KeyValue


class TaskContext:
    """What a running map/reduce task can see."""

    def __init__(self, cache_lookup: Callable[[str], Any]) -> None:
        self._cache_lookup = cache_lookup
        self.counters = Counters()

    def cached(self, name: str) -> Any:
        """Read a distributed-cache object by name."""
        return self._cache_lookup(name)


#: mapper(key, value, context) -> iterable of (key, value)
Mapper = Callable[[Any, Any, TaskContext], Iterable[KeyValue]]
#: reducer(key, values, context) -> iterable of (key, value)
Reducer = Callable[[Any, list[Any], TaskContext], Iterable[KeyValue]]


def identity_mapper(key: Any, value: Any, _: TaskContext) -> Iterator[KeyValue]:
    yield key, value


def identity_reducer(
    key: Any, values: list[Any], _: TaskContext
) -> Iterator[KeyValue]:
    for value in values:
        yield key, value


@dataclass
class MapReduceJob:
    """Declarative description of one MapReduce round.

    Attributes:
        name: label used in counters and timing reports.
        mapper: the map function.
        reducer: the reduce function.
        combiner: optional map-side pre-aggregation, run per map task on
            its grouped output before the shuffle.
        partitioner: key -> reducer assignment; defaults to hash.
        num_reducers: reduce-task count; defaults to the cluster width.
    """

    name: str
    mapper: Mapper = identity_mapper
    reducer: Reducer = identity_reducer
    combiner: Reducer | None = None
    partitioner: Partitioner = field(default=hash_partitioner)
    num_reducers: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise JobConfigurationError("job needs a non-empty name")
        if self.num_reducers is not None and self.num_reducers < 1:
            raise JobConfigurationError("num_reducers must be positive")
