"""Job counters, Hadoop-style.

Counters accumulate named integer metrics during a job run.  The standard
names below cover what the paper's evaluation reads off its cluster: the
shuffle volume between mappers and reducers (Figure 7) plus broadcast
(distributed-cache) traffic, which the paper's cost analysis folds into
shuffling cost (Section 5.4).
"""

from __future__ import annotations

from collections import defaultdict

#: Bytes of mapper output shuffled to reducers.
SHUFFLE_BYTES = "shuffle.bytes"
#: Records of mapper output shuffled to reducers.
SHUFFLE_RECORDS = "shuffle.records"
#: Bytes broadcast to every worker through the distributed cache.
BROADCAST_BYTES = "broadcast.bytes"
#: Records read by all map tasks.
MAP_INPUT_RECORDS = "map.input.records"
#: Records produced by all reduce tasks.
REDUCE_OUTPUT_RECORDS = "reduce.output.records"
#: Task attempts that failed and were retried (re-executions only; the
#: final failure of an aborting task is not a retry).
TASK_RETRIES = "task.retries"
#: Speculative (backup) attempts launched for straggler tasks.
TASK_SPECULATIVE = "task.speculative"
#: Simulated seconds spent in retry backoff, charged to the wall clock.
BACKOFF_SECONDS = "task.backoff.seconds"
#: Workers removed from scheduling after repeated task failures.
WORKERS_BLACKLISTED = "worker.blacklisted"
#: Workers permanently lost to injected crashes.
WORKERS_LOST = "worker.lost"
#: Pipeline stages restored from a checkpoint instead of re-run.
CHECKPOINT_RESTORES = "checkpoint.restores"


class Counters:
    """A named-counter map with merge support.

    Values are integers for record/byte counts; time-valued counters
    (:data:`BACKOFF_SECONDS`) accumulate floats.
    """

    def __init__(self) -> None:
        self._values: dict[str, int | float] = defaultdict(int)

    def add(self, name: str, amount: int | float = 1) -> None:
        self._values[name] += amount

    def get(self, name: str) -> int | float:
        return self._values.get(name, 0)

    def merge(self, other: "Counters") -> None:
        for name, value in other._values.items():
            self._values[name] += value

    def as_dict(self) -> dict[str, int | float]:
        return dict(self._values)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={value}" for name, value in sorted(self._values.items())
        )
        return f"Counters({inner})"

    @property
    def total_shuffle_bytes(self) -> int:
        """Shuffled plus broadcast bytes: the paper's shuffle-cost metric."""
        return self.get(SHUFFLE_BYTES) + self.get(BROADCAST_BYTES)


def metric_name(counter_name: str) -> str:
    """Prometheus-safe metric name for a job counter.

    ``shuffle.bytes`` becomes ``mr_shuffle_bytes`` — the ``mr_`` prefix
    namespaces the MapReduce plane inside the shared registry.
    """
    return "mr_" + counter_name.replace(".", "_").replace("-", "_")


def publish_counters(counters: Counters, job: str) -> None:
    """Fold a job's counters into the process metrics registry.

    No-op unless ambient metric collection is enabled; each counter
    lands as ``mr_<name>{job=...}`` so per-job and cluster-wide totals
    are both recoverable from one exposition.
    """
    from repro.obs import REGISTRY

    if not REGISTRY.enabled:
        return
    for name, value in counters.as_dict().items():
        if value < 0:  # defensive: counters must only rise
            continue
        REGISTRY.counter(metric_name(name), job=job).inc(value)
