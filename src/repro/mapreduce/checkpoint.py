"""Job-chain checkpointing for the distributed pipelines.

The paper's pipelines are job *chains*: preprocessing feeds the
HA-Index-build job, whose merged output the join job broadcasts
(Figure 5).  A mid-pipeline abort — a job exhausting its attempt budget
under real or injected faults — previously forced the whole chain to
restart from scratch.  A :class:`CheckpointStore` persists each
completed stage keyed by a fingerprint of its exact inputs, so a re-run
of the same pipeline resumes from the last completed stage instead:
the join job restarts from the persisted index-build output, and
preprocessing (sampled hash + pivots) is never re-learned.

Fingerprints cover the stage's input records *and* every parameter that
shapes its output, so a checkpoint is only ever reused for a bit-for-bit
identical stage — stale entries are ignored, never served.
"""

from __future__ import annotations

import hashlib
import pickle
import warnings
from pathlib import Path
from typing import Any, Iterable

import numpy as np

from repro.core.errors import CheckpointError

#: Stage name of the persisted global HA-Index build output.
STAGE_INDEX_BUILD = "ha-index-build"
#: Stage name of the persisted preprocessing output (hash + pivots).
STAGE_PREPROCESS = "preprocess"


def fingerprint_parts(*parts: object) -> str:
    """Hex fingerprint of a parameter tuple."""
    digest = hashlib.blake2b(digest_size=16)
    for part in parts:
        digest.update(repr(part).encode())
        digest.update(b"\x1f")
    return digest.hexdigest()


def fingerprint_records(
    records: Iterable[tuple[Any, Any]], *parts: object
) -> str:
    """Hex fingerprint of (id, vector) records plus stage parameters.

    Hashing is linear in the data (ids and raw vector bytes), so
    checking whether a checkpoint applies is far cheaper than re-running
    the stage it replaces.
    """
    digest = hashlib.blake2b(digest_size=16)
    for part in parts:
        digest.update(repr(part).encode())
        digest.update(b"\x1f")
    for key, vector in records:
        digest.update(repr(key).encode())
        digest.update(np.ascontiguousarray(vector).tobytes())
    return digest.hexdigest()


class CheckpointStore:
    """Keyed store of completed pipeline-stage outputs.

    In-memory by default; pass ``path`` to also persist each stage as a
    pickle under that directory so recovery works across processes.
    ``restore`` returns ``None`` for a missing or stale (fingerprint
    mismatch) entry; a corrupt or truncated on-disk entry is treated
    the same way — warned about, discarded, and reported as a miss —
    because a checkpoint is a pure cache of recomputable work, and a
    half-written file left by a crash must never wedge the pipeline it
    exists to speed up.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self._memory: dict[str, tuple[str, Any]] = {}
        self._path = Path(path) if path is not None else None
        if self._path is not None:
            self._path.mkdir(parents=True, exist_ok=True)

    def _file(self, stage: str) -> Path:
        assert self._path is not None
        safe = stage.replace("/", "_").replace("\\", "_")
        return self._path / f"{safe}.ckpt"

    def save(self, stage: str, fingerprint: str, value: Any) -> None:
        """Record ``value`` as the output of ``stage`` for these inputs."""
        self._memory[stage] = (fingerprint, value)
        if self._path is None:
            return
        try:
            blob = pickle.dumps(
                (fingerprint, value), protocol=pickle.HIGHEST_PROTOCOL
            )
            self._file(stage).write_bytes(blob)
        except (OSError, pickle.PicklingError) as error:
            raise CheckpointError(
                f"cannot persist checkpoint {stage!r}: {error}"
            ) from error

    def restore(self, stage: str, fingerprint: str) -> Any | None:
        """Return the persisted output of ``stage``, or ``None``.

        ``None`` means missing, recorded for different inputs, or
        corrupt on disk (warned and discarded) — the caller re-runs the
        stage either way.
        """
        entry = self._memory.get(stage)
        if entry is None and self._path is not None:
            file = self._file(stage)
            if file.exists():
                try:
                    entry = pickle.loads(file.read_bytes())
                except Exception as error:  # noqa: BLE001 - any unpickle fault
                    self._discard_corrupt(stage, file, str(error))
                    return None
                if (
                    not isinstance(entry, tuple)
                    or len(entry) != 2
                    or not isinstance(entry[0], str)
                ):
                    self._discard_corrupt(
                        stage, file, "unexpected payload shape"
                    )
                    return None
                self._memory[stage] = entry
        if entry is None:
            return None
        saved_fingerprint, value = entry
        if saved_fingerprint != fingerprint:
            return None
        return value

    def _discard_corrupt(self, stage: str, file: Path, why: str) -> None:
        """Warn about and delete an unusable on-disk entry (cache miss)."""
        warnings.warn(
            f"discarding corrupt checkpoint {stage!r} at {file}: {why}",
            RuntimeWarning,
            stacklevel=3,
        )
        file.unlink(missing_ok=True)

    def has(self, stage: str, fingerprint: str) -> bool:
        return self.restore(stage, fingerprint) is not None

    def discard(self, stage: str) -> None:
        """Drop one stage's checkpoint (memory and disk)."""
        self._memory.pop(stage, None)
        if self._path is not None:
            self._file(stage).unlink(missing_ok=True)

    def clear(self) -> None:
        for stage in list(self._memory):
            self.discard(stage)

    def __len__(self) -> int:
        return len(self._memory)

    def __repr__(self) -> str:
        where = f", path={str(self._path)!r}" if self._path else ""
        return f"CheckpointStore(stages={sorted(self._memory)}{where})"
