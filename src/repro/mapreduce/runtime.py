"""The MapReduce execution engine and its cluster-time model.

The runtime executes real mapper/reducer code in-process, one task at a
time, while keeping the bookkeeping a physical cluster would produce:

* every mapper-output record is charged its pickled size to the shuffle
  counters (``Counters.SHUFFLE_BYTES``) — nothing is modelled here, the
  records really are the shuffle payload;
* every task's CPU time is measured with ``perf_counter`` and attributed
  to the worker the task is scheduled on (tasks round-robin over the
  *live* workers — the wave shrinks when workers die or are
  blacklisted);
* the *simulated wall clock* of a phase is the maximum over workers of
  the sum of their task times — the "slowest mapper or reducer determines
  the job running time" observation that motivates the paper's load
  balancing (Section 5).

Shapes are therefore preserved faithfully: a skewed partitioning shows up
as one overloaded worker stretching the simulated wall clock, and a heavy
broadcast shows up in the shuffle counters, exactly the two effects
Figures 7 and 9 measure.

Robustness mechanisms (Hadoop-style, all charged to simulated time):

* **retries with exponential backoff + jitter** — a failed attempt is
  re-executed after a deterministic backoff delay that doubles per
  failure (``task.backoff.seconds``);
* **worker blacklisting** — a worker accumulating repeated task failures
  stops receiving work; its tasks reschedule onto survivors
  (``worker.blacklisted``);
* **permanent worker death** — an injected node loss removes the worker
  for the rest of the runtime's life and reschedules the task without
  consuming its attempt budget (``worker.lost``);
* **speculative execution** — a task running past
  ``speculation_threshold`` × the median task time gets a backup attempt
  on the least-loaded survivor; the first finisher wins and the loser's
  time until the kill is still charged (``task.speculative``).

Fault *injection* is driven by a :class:`~repro.mapreduce.faults.FaultPlan`;
with no plan installed the scheduler degrades to the plain round-robin
wave model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from statistics import median
from typing import Any, Callable, Iterable

from repro.core.errors import (
    JobConfigurationError,
    JobExecutionError,
    WorkerLostError,
)
from repro.mapreduce.cluster import Cluster
from repro.mapreduce.counters import (
    BACKOFF_SECONDS,
    MAP_INPUT_RECORDS,
    REDUCE_OUTPUT_RECORDS,
    SHUFFLE_BYTES,
    SHUFFLE_RECORDS,
    TASK_RETRIES,
    TASK_SPECULATIVE,
    WORKERS_BLACKLISTED,
    WORKERS_LOST,
    Counters,
    publish_counters,
)
from repro.mapreduce.faults import FaultPlan, hash_unit
from repro.obs.trace import record_span, trace_span
from repro.mapreduce.job import MapReduceJob, TaskContext
from repro.mapreduce.types import InputSplit, KeyValue, make_splits, record_bytes

#: Modelled fixed per-job startup overhead (seconds of simulated time);
#: Hadoop jobs pay scheduling/JVM costs that an in-process simulator
#: would otherwise hide entirely.
JOB_OVERHEAD_SECONDS = 0.02

#: Default task retry budget, mirroring Hadoop's
#: ``mapreduce.map.maxattempts`` of 4 attempts total.
DEFAULT_MAX_TASK_ATTEMPTS = 4

#: First-retry backoff in simulated seconds; doubles per failure.
DEFAULT_BACKOFF_BASE_SECONDS = 0.1

#: Failures on one worker before it is blacklisted (Hadoop's
#: ``mapreduce.job.maxtaskfailures.per.tracker`` spirit).
DEFAULT_BLACKLIST_FAILURES = 3

#: A task is a straggler once it exceeds this multiple of the median
#: completed-task time; a backup attempt is then launched.
DEFAULT_SPECULATION_THRESHOLD = 2.0

#: Completed tasks needed before the median is trusted for speculation.
DEFAULT_SPECULATION_MIN_TASKS = 3


@dataclass
class JobResult:
    """Everything a job run produces."""

    name: str
    output: list[KeyValue]
    counters: Counters
    map_task_seconds: list[float] = field(default_factory=list)
    reduce_task_seconds: list[float] = field(default_factory=list)
    map_wall_seconds: float = 0.0
    reduce_wall_seconds: float = 0.0
    shuffle_transfer_seconds: float = 0.0
    broadcast_transfer_seconds: float = 0.0

    @property
    def simulated_seconds(self) -> float:
        """Modelled cluster wall clock for the whole job.

        Overhead + pending broadcast transfer (objects placed in the
        distributed cache since the previous job) + map wave + shuffle
        transfer (metered bytes over the cluster's modelled bandwidth) +
        reduce wave.
        """
        return (
            JOB_OVERHEAD_SECONDS
            + self.broadcast_transfer_seconds
            + self.map_wall_seconds
            + self.shuffle_transfer_seconds
            + self.reduce_wall_seconds
        )

    @property
    def shuffle_bytes(self) -> int:
        return self.counters.total_shuffle_bytes


def _wall_clock(task_seconds: list[float], num_workers: int) -> float:
    """Max-over-workers schedule length under round-robin placement."""
    loads = [0.0] * num_workers
    for position, seconds in enumerate(task_seconds):
        loads[position % num_workers] += seconds
    return max(loads, default=0.0)


#: A phase task body: takes the distributed-cache lookup for this
#: attempt, returns (payload, context).  Must be side-effect free so a
#: failed attempt leaves nothing behind — MapReduce's re-execution model.
_TaskRunner = Callable[[Callable[[str], Any]], tuple[Any, TaskContext]]


class MapReduceRuntime:
    """Runs :class:`MapReduceJob` specifications on a :class:`Cluster`.

    Tasks are retried on failure (MapReduce's fault-tolerance story:
    mappers and reducers are pure functions of their input, so a failed
    attempt is simply re-executed).  A task that keeps failing past
    ``max_task_attempts`` aborts the job with
    :class:`~repro.core.errors.JobExecutionError`, like a Hadoop job
    exceeding its attempt budget.

    An optional :class:`~repro.mapreduce.faults.FaultPlan` injects
    deterministic chaos — crashes, permanent worker deaths, stragglers,
    transient broadcast-fetch failures — which the scheduler absorbs
    through backoff, blacklisting, rescheduling and speculative
    execution.  Worker deaths and blacklistings persist across the jobs
    of one runtime, shrinking the effective wave width of a pipeline's
    later jobs exactly as on a real cluster.
    """

    def __init__(
        self,
        cluster: Cluster,
        max_task_attempts: int = DEFAULT_MAX_TASK_ATTEMPTS,
        fault_plan: FaultPlan | None = None,
        speculative_execution: bool = True,
        speculation_threshold: float = DEFAULT_SPECULATION_THRESHOLD,
        speculation_min_tasks: int = DEFAULT_SPECULATION_MIN_TASKS,
        backoff_base_seconds: float = DEFAULT_BACKOFF_BASE_SECONDS,
        blacklist_failures: int = DEFAULT_BLACKLIST_FAILURES,
    ) -> None:
        if max_task_attempts < 1:
            raise JobConfigurationError(
                "max_task_attempts must be positive"
            )
        if speculation_threshold <= 1.0:
            raise JobConfigurationError(
                "speculation_threshold must exceed 1"
            )
        if blacklist_failures < 1:
            raise JobConfigurationError(
                "blacklist_failures must be positive"
            )
        if backoff_base_seconds < 0:
            raise JobConfigurationError(
                "backoff_base_seconds must be non-negative"
            )
        self._cluster = cluster
        self._max_attempts = max_task_attempts
        self._plan = fault_plan
        self._speculation = speculative_execution
        self._spec_threshold = speculation_threshold
        self._spec_min_tasks = speculation_min_tasks
        self._backoff_base = backoff_base_seconds
        self._blacklist_after = blacklist_failures
        self._lost_workers: set[int] = set()
        self._blacklisted_workers: set[int] = set()
        self._worker_failures: dict[int, int] = {}

    @property
    def cluster(self) -> Cluster:
        return self._cluster

    @property
    def fault_plan(self) -> FaultPlan | None:
        return self._plan

    @property
    def lost_workers(self) -> frozenset[int]:
        """Workers permanently dead for the rest of this runtime's life."""
        return frozenset(self._lost_workers)

    @property
    def blacklisted_workers(self) -> frozenset[int]:
        """Workers no longer scheduled after repeated task failures."""
        return frozenset(self._blacklisted_workers)

    def _live_workers(self) -> list[int]:
        unavailable = self._lost_workers | self._blacklisted_workers
        return [
            worker
            for worker in range(self._cluster.num_workers)
            if worker not in unavailable
        ]

    def run(
        self,
        job: MapReduceJob,
        inputs: Iterable[KeyValue] | list[InputSplit],
        num_splits: int | None = None,
    ) -> JobResult:
        """Execute one job and return its outputs plus bookkeeping.

        ``inputs`` may be raw records (split automatically, one split per
        worker unless ``num_splits`` says otherwise) or prebuilt splits.
        Counters are merged into the cluster's even when the job aborts,
        so a failed run still reports its retries and faults.
        """
        splits = self._as_splits(inputs, num_splits)
        num_reducers = job.num_reducers or self._cluster.num_workers
        counters = Counters()
        result = JobResult(job.name, [], counters)
        result.broadcast_transfer_seconds = self._cluster.transfer_seconds(
            self._cluster.take_pending_broadcast_bytes()
        )

        with trace_span("mr.job", job=job.name) as job_span:
            try:
                partitions: list[list[KeyValue]] = [
                    [] for _ in range(num_reducers)
                ]
                map_runners = [
                    self._map_runner(job, split) for split in splits
                ]
                (
                    map_payloads,
                    result.map_task_seconds,
                    result.map_wall_seconds,
                ) = self._execute_phase(job, "map", map_runners, counters)
                record_span(
                    "mr.map", result.map_wall_seconds,
                    simulated=True, tasks=len(map_runners),
                )
                for split, (emitted, context) in zip(splits, map_payloads):
                    counters.add(MAP_INPUT_RECORDS, len(split))
                    for record in emitted:
                        counters.add(SHUFFLE_RECORDS)
                        counters.add(SHUFFLE_BYTES, record_bytes(record))
                        partitions[
                            job.partitioner(record[0], num_reducers)
                        ].append(record)
                    counters.merge(context.counters)

                reduce_runners = [
                    self._reduce_runner(job, partition)
                    for partition in partitions
                ]
                (
                    reduce_payloads,
                    result.reduce_task_seconds,
                    result.reduce_wall_seconds,
                ) = self._execute_phase(
                    job, "reduce", reduce_runners, counters
                )
                for produced, context in reduce_payloads:
                    counters.add(REDUCE_OUTPUT_RECORDS, len(produced))
                    result.output.extend(produced)
                    counters.merge(context.counters)

                result.shuffle_transfer_seconds = (
                    self._cluster.transfer_seconds(
                        counters.get(SHUFFLE_BYTES)
                    )
                )
                record_span(
                    "mr.shuffle", result.shuffle_transfer_seconds,
                    simulated=True,
                    records=counters.get(SHUFFLE_RECORDS),
                    bytes=counters.get(SHUFFLE_BYTES),
                )
                if result.broadcast_transfer_seconds:
                    record_span(
                        "mr.broadcast",
                        result.broadcast_transfer_seconds,
                        simulated=True,
                    )
                record_span(
                    "mr.reduce", result.reduce_wall_seconds,
                    simulated=True, tasks=len(reduce_runners),
                )
                job_span.annotate(
                    simulated_seconds=result.simulated_seconds
                )
            finally:
                # Even an aborted job surfaces its counters (retries,
                # lost workers, backoff) on the cluster, like a failed
                # Hadoop job's history file.
                self._cluster.counters.merge(counters)
                publish_counters(counters, job.name)
        return result

    def _as_splits(
        self,
        inputs: Iterable[KeyValue] | list[InputSplit],
        num_splits: int | None,
    ) -> list[InputSplit]:
        materialized = list(inputs)
        if materialized and isinstance(materialized[0], InputSplit):
            if not all(isinstance(s, InputSplit) for s in materialized):
                raise JobConfigurationError(
                    "mix of raw records and InputSplits"
                )
            return materialized  # type: ignore[return-value]
        return make_splits(
            materialized,  # type: ignore[arg-type]
            num_splits or self._cluster.num_workers,
        )

    def _map_runner(self, job: MapReduceJob, split: InputSplit) -> _TaskRunner:
        def runner(
            cache_lookup: Callable[[str], Any]
        ) -> tuple[Any, TaskContext]:
            context = TaskContext(cache_lookup)
            emitted: list[KeyValue] = []
            for key, value in split:
                emitted.extend(job.mapper(key, value, context))
            if job.combiner is not None:
                emitted = self._combine(job, emitted, context)
            return emitted, context

        return runner

    def _reduce_runner(
        self, job: MapReduceJob, partition: list[KeyValue]
    ) -> _TaskRunner:
        def runner(
            cache_lookup: Callable[[str], Any]
        ) -> tuple[Any, TaskContext]:
            context = TaskContext(cache_lookup)
            produced: list[KeyValue] = []
            for key, values in _group_by_key(partition):
                produced.extend(job.reducer(key, values, context))
            return produced, context

        return runner

    def _combine(
        self, job: MapReduceJob, emitted: list[KeyValue], context: TaskContext
    ) -> list[KeyValue]:
        assert job.combiner is not None
        grouped = _group_by_key(emitted)
        combined: list[KeyValue] = []
        for key, values in grouped:
            combined.extend(job.combiner(key, values, context))
        return combined

    # ------------------------------------------------------------------
    # Phase scheduling
    # ------------------------------------------------------------------

    def _execute_phase(
        self,
        job: MapReduceJob,
        kind: str,
        runners: list[_TaskRunner],
        counters: Counters,
    ) -> tuple[list[Any], list[float], float]:
        """Run one wave of tasks; returns (payloads, task times, wall).

        Placement is round-robin over the live workers, so with a full
        cluster and no faults the schedule equals the classic
        ``_wall_clock`` round-robin model exactly.
        """
        if not self._live_workers():
            raise WorkerLostError(
                f"no live workers left to run {kind} tasks of "
                f"job {job.name!r}"
            )
        loads = {worker: 0.0 for worker in range(self._cluster.num_workers)}
        payloads: list[Any] = []
        task_seconds: list[float] = []
        for task_id, runner in enumerate(runners):
            payload, charge = self._execute_task(
                job, kind, task_id, runner, counters, loads, task_seconds
            )
            payloads.append(payload)
            task_seconds.append(charge)
        wall = max(loads.values(), default=0.0)
        return payloads, task_seconds, wall

    def _execute_task(
        self,
        job: MapReduceJob,
        kind: str,
        task_id: int,
        runner: _TaskRunner,
        counters: Counters,
        loads: dict[int, float],
        completed: list[float],
    ) -> tuple[Any, float]:
        """Drive one task to success (or abort), with every robustness
        mechanism engaged: retries, backoff, blacklisting, rescheduling
        off dead workers, and speculative execution on success."""
        live = self._live_workers()
        worker = live[task_id % len(live)]
        failures = 0
        while True:
            multiplier = (
                self._plan.straggler_multiplier(job.name, kind, task_id, worker)
                if self._plan is not None
                else 1.0
            )
            lookup = self._attempt_cache_lookup(
                job.name, kind, task_id, failures
            )
            started = time.perf_counter()
            error: Exception | None = None
            payload: Any = None
            try:
                payload = runner(lookup)
            except Exception as exc:  # noqa: BLE001 - task code is user code
                error = exc
            base_elapsed = time.perf_counter() - started
            elapsed = base_elapsed * multiplier

            if error is None and self._plan is not None:
                if self._plan.worker_dies(
                    job.name, kind, task_id, failures, worker
                ):
                    # The node is gone: charge its partial work, shrink
                    # the cluster, reschedule without burning an attempt
                    # (Hadoop re-runs tasks of lost trackers as "killed",
                    # not "failed").
                    loads[worker] += elapsed
                    self._lose_worker(worker, counters)
                    live = self._live_workers()
                    if not live:
                        raise WorkerLostError(
                            f"every worker died running {kind} tasks of "
                            f"job {job.name!r}"
                        )
                    worker = min(live, key=lambda w: loads[w])
                    continue
                if self._plan.crashes(job.name, kind, task_id, failures):
                    error = WorkerLostError(
                        f"injected crash of {kind} task {task_id} "
                        f"(attempt {failures})"
                    )

            if error is None:
                return payload, self._commit_task(
                    job,
                    kind,
                    task_id,
                    worker,
                    base_elapsed,
                    elapsed,
                    loads,
                    completed,
                    counters,
                )

            # Failed attempt: charge its time, maybe blacklist, retry
            # with exponential backoff or abort past the budget.
            loads[worker] += elapsed
            failures += 1
            self._record_worker_failure(worker, counters)
            if failures >= self._max_attempts:
                raise JobExecutionError(
                    f"{kind} task of job {job.name!r} failed "
                    f"{self._max_attempts} times; last error: {error!r}"
                ) from error
            counters.add(TASK_RETRIES)
            backoff = self._backoff_seconds(job.name, kind, task_id, failures)
            if backoff > 0.0:
                counters.add(BACKOFF_SECONDS, backoff)
            live = self._live_workers()
            if worker not in live:
                worker = min(live, key=lambda w: loads[w])
            loads[worker] += backoff

    def _commit_task(
        self,
        job: MapReduceJob,
        kind: str,
        task_id: int,
        worker: int,
        base_elapsed: float,
        charge: float,
        loads: dict[int, float],
        completed: list[float],
        counters: Counters,
    ) -> float:
        """Account a successful attempt, speculating if it straggled.

        A backup attempt launches once the task exceeds the straggler
        threshold relative to the median completed-task time; the first
        finisher wins and the loser is killed at commit, its time until
        the kill still charged to its worker.
        """
        live = self._live_workers()
        if (
            self._speculation
            and len(live) > 1
            and len(completed) >= self._spec_min_tasks
        ):
            typical = median(completed)
            if typical > 0.0 and charge > self._spec_threshold * typical:
                detect = self._spec_threshold * typical
                backup_worker = min(
                    (w for w in live if w != worker), key=lambda w: loads[w]
                )
                backup_multiplier = (
                    self._plan.straggler_multiplier(
                        job.name, kind, task_id, backup_worker
                    )
                    if self._plan is not None
                    else 1.0
                )
                backup_charge = base_elapsed * backup_multiplier
                counters.add(TASK_SPECULATIVE)
                if detect + backup_charge < charge:
                    # Backup wins; the original is killed at commit time.
                    winner = detect + backup_charge
                    loads[worker] += winner
                    loads[backup_worker] += backup_charge
                    return winner
                # Original wins; the backup ran from detection until the
                # commit and that time is wasted but still charged.
                loads[worker] += charge
                loads[backup_worker] += min(
                    backup_charge, max(0.0, charge - detect)
                )
                return charge
        loads[worker] += charge
        return charge

    def _attempt_cache_lookup(
        self, job_name: str, kind: str, task_id: int, attempt: int
    ) -> Callable[[str], Any]:
        """Distributed-cache lookup for one attempt, with injected
        transient fetch failures when the fault plan says so."""
        if (
            self._plan is None
            or self._plan.policy.broadcast_failure_prob <= 0.0
        ):
            return self._cluster.cached

        plan = self._plan

        def lookup(name: str) -> Any:
            if plan.broadcast_fetch_fails(
                job_name, kind, task_id, attempt, name
            ):
                raise WorkerLostError(
                    f"transient broadcast fetch failure for {name!r} "
                    f"({kind} task {task_id}, attempt {attempt})"
                )
            return self._cluster.cached(name)

        return lookup

    def _backoff_seconds(
        self, job_name: str, kind: str, task_id: int, failures: int
    ) -> float:
        """Exponential backoff with deterministic jitter in [0.5x, 1.5x]."""
        if self._backoff_base <= 0.0:
            return 0.0
        seed = self._plan.policy.seed if self._plan is not None else 0
        jitter = hash_unit(seed, "backoff", job_name, kind, task_id, failures)
        return self._backoff_base * (2.0 ** (failures - 1)) * (0.5 + jitter)

    def _record_worker_failure(self, worker: int, counters: Counters) -> None:
        self._worker_failures[worker] = self._worker_failures.get(worker, 0) + 1
        if (
            worker not in self._blacklisted_workers
            and self._worker_failures[worker] >= self._blacklist_after
            and len(self._live_workers()) > 1
        ):
            self._blacklisted_workers.add(worker)
            counters.add(WORKERS_BLACKLISTED)

    def _lose_worker(self, worker: int, counters: Counters) -> None:
        if worker not in self._lost_workers:
            self._lost_workers.add(worker)
            counters.add(WORKERS_LOST)


def _group_by_key(records: list[KeyValue]) -> list[tuple[Any, list[Any]]]:
    """Sort-and-group, as the shuffle does between map and reduce."""
    grouped: dict[Any, list[Any]] = {}
    for key, value in records:
        grouped.setdefault(key, []).append(value)
    try:
        ordered_keys = sorted(grouped)
    except TypeError:
        ordered_keys = sorted(grouped, key=repr)
    return [(key, grouped[key]) for key in ordered_keys]
