"""The MapReduce execution engine and its cluster-time model.

The runtime executes real mapper/reducer code in-process, one task at a
time, while keeping the bookkeeping a physical cluster would produce:

* every mapper-output record is charged its pickled size to the shuffle
  counters (``Counters.SHUFFLE_BYTES``) — nothing is modelled here, the
  records really are the shuffle payload;
* every task's CPU time is measured with ``perf_counter`` and attributed
  to the worker the task is scheduled on (map tasks round-robin over
  input splits, reduce tasks over partitions);
* the *simulated wall clock* of a phase is the maximum over workers of
  the sum of their task times — the "slowest mapper or reducer determines
  the job running time" observation that motivates the paper's load
  balancing (Section 5).

Shapes are therefore preserved faithfully: a skewed partitioning shows up
as one overloaded worker stretching the simulated wall clock, and a heavy
broadcast shows up in the shuffle counters, exactly the two effects
Figures 7 and 9 measure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core.errors import JobConfigurationError, JobExecutionError
from repro.mapreduce.cluster import Cluster
from repro.mapreduce.counters import (
    MAP_INPUT_RECORDS,
    REDUCE_OUTPUT_RECORDS,
    SHUFFLE_BYTES,
    SHUFFLE_RECORDS,
    TASK_RETRIES,
    Counters,
)
from repro.mapreduce.job import MapReduceJob, TaskContext
from repro.mapreduce.types import InputSplit, KeyValue, make_splits, record_bytes

#: Modelled fixed per-job startup overhead (seconds of simulated time);
#: Hadoop jobs pay scheduling/JVM costs that an in-process simulator
#: would otherwise hide entirely.
JOB_OVERHEAD_SECONDS = 0.02


@dataclass
class JobResult:
    """Everything a job run produces."""

    name: str
    output: list[KeyValue]
    counters: Counters
    map_task_seconds: list[float] = field(default_factory=list)
    reduce_task_seconds: list[float] = field(default_factory=list)
    map_wall_seconds: float = 0.0
    reduce_wall_seconds: float = 0.0
    shuffle_transfer_seconds: float = 0.0

    @property
    def simulated_seconds(self) -> float:
        """Modelled cluster wall clock for the whole job.

        Overhead + map wave + shuffle transfer (metered bytes over the
        cluster's modelled bandwidth) + reduce wave.
        """
        return (
            JOB_OVERHEAD_SECONDS
            + self.map_wall_seconds
            + self.shuffle_transfer_seconds
            + self.reduce_wall_seconds
        )

    @property
    def shuffle_bytes(self) -> int:
        return self.counters.total_shuffle_bytes


def _wall_clock(task_seconds: list[float], num_workers: int) -> float:
    """Max-over-workers schedule length under round-robin placement."""
    loads = [0.0] * num_workers
    for position, seconds in enumerate(task_seconds):
        loads[position % num_workers] += seconds
    return max(loads, default=0.0)


#: Default task retry budget, mirroring Hadoop's
#: ``mapreduce.map.maxattempts`` of 4 attempts total.
DEFAULT_MAX_TASK_ATTEMPTS = 4


class MapReduceRuntime:
    """Runs :class:`MapReduceJob` specifications on a :class:`Cluster`.

    Tasks are retried on failure (MapReduce's fault-tolerance story:
    mappers and reducers are pure functions of their input, so a failed
    attempt is simply re-executed).  A task that keeps failing past
    ``max_task_attempts`` aborts the job with
    :class:`~repro.core.errors.JobExecutionError`, like a Hadoop job
    exceeding its attempt budget.
    """

    def __init__(
        self,
        cluster: Cluster,
        max_task_attempts: int = DEFAULT_MAX_TASK_ATTEMPTS,
    ) -> None:
        if max_task_attempts < 1:
            raise JobConfigurationError(
                "max_task_attempts must be positive"
            )
        self._cluster = cluster
        self._max_attempts = max_task_attempts

    @property
    def cluster(self) -> Cluster:
        return self._cluster

    def _attempt_task(
        self, job_name: str, kind: str, task, counters: Counters
    ):
        """Run a task callable with retries; returns its result."""
        failures = []
        for attempt in range(self._max_attempts):
            try:
                return task()
            except Exception as error:  # noqa: BLE001 - task code is user code
                failures.append(error)
                counters.add(TASK_RETRIES)
        raise JobExecutionError(
            f"{kind} task of job {job_name!r} failed "
            f"{self._max_attempts} times; last error: {failures[-1]!r}"
        ) from failures[-1]

    def run(
        self,
        job: MapReduceJob,
        inputs: Iterable[KeyValue] | list[InputSplit],
        num_splits: int | None = None,
    ) -> JobResult:
        """Execute one job and return its outputs plus bookkeeping.

        ``inputs`` may be raw records (split automatically, one split per
        worker unless ``num_splits`` says otherwise) or prebuilt splits.
        """
        splits = self._as_splits(inputs, num_splits)
        num_reducers = job.num_reducers or self._cluster.num_workers
        counters = Counters()
        result = JobResult(job.name, [], counters)

        partitions: list[list[KeyValue]] = [[] for _ in range(num_reducers)]
        for split in splits:
            elapsed = self._run_map_task(
                job, split, partitions, num_reducers, counters
            )
            result.map_task_seconds.append(elapsed)

        for partition in partitions:
            elapsed = self._run_reduce_task(
                job, partition, result.output, counters
            )
            result.reduce_task_seconds.append(elapsed)

        workers = self._cluster.num_workers
        result.map_wall_seconds = _wall_clock(result.map_task_seconds, workers)
        result.reduce_wall_seconds = _wall_clock(
            result.reduce_task_seconds, workers
        )
        result.shuffle_transfer_seconds = self._cluster.transfer_seconds(
            counters.get(SHUFFLE_BYTES)
        )
        self._cluster.counters.merge(counters)
        return result

    def _as_splits(
        self,
        inputs: Iterable[KeyValue] | list[InputSplit],
        num_splits: int | None,
    ) -> list[InputSplit]:
        materialized = list(inputs)
        if materialized and isinstance(materialized[0], InputSplit):
            if not all(isinstance(s, InputSplit) for s in materialized):
                raise JobConfigurationError(
                    "mix of raw records and InputSplits"
                )
            return materialized  # type: ignore[return-value]
        return make_splits(
            materialized,  # type: ignore[arg-type]
            num_splits or self._cluster.num_workers,
        )

    def _run_map_task(
        self,
        job: MapReduceJob,
        split: InputSplit,
        partitions: list[list[KeyValue]],
        num_reducers: int,
        counters: Counters,
    ) -> float:
        def attempt() -> tuple[list[KeyValue], TaskContext, float]:
            context = TaskContext(self._cluster.cached)
            started = time.perf_counter()
            emitted: list[KeyValue] = []
            for key, value in split:
                emitted.extend(job.mapper(key, value, context))
            if job.combiner is not None:
                emitted = self._combine(job, emitted, context)
            return emitted, context, time.perf_counter() - started

        # The attempt is side-effect free (emits into a local list), so a
        # failed try leaves no partial records behind — the re-execution
        # fault-tolerance model of MapReduce.
        emitted, context, elapsed = self._attempt_task(
            job.name, "map", attempt, counters
        )
        counters.add(MAP_INPUT_RECORDS, len(split))
        for record in emitted:
            counters.add(SHUFFLE_RECORDS)
            counters.add(SHUFFLE_BYTES, record_bytes(record))
            partitions[job.partitioner(record[0], num_reducers)].append(
                record
            )
        counters.merge(context.counters)
        return elapsed

    def _combine(
        self, job: MapReduceJob, emitted: list[KeyValue], context: TaskContext
    ) -> list[KeyValue]:
        assert job.combiner is not None
        grouped = _group_by_key(emitted)
        combined: list[KeyValue] = []
        for key, values in grouped:
            combined.extend(job.combiner(key, values, context))
        return combined

    def _run_reduce_task(
        self,
        job: MapReduceJob,
        partition: list[KeyValue],
        output: list[KeyValue],
        counters: Counters,
    ) -> float:
        def attempt() -> tuple[list[KeyValue], TaskContext, float]:
            context = TaskContext(self._cluster.cached)
            started = time.perf_counter()
            produced: list[KeyValue] = []
            for key, values in _group_by_key(partition):
                produced.extend(job.reducer(key, values, context))
            return produced, context, time.perf_counter() - started

        produced, context, elapsed = self._attempt_task(
            job.name, "reduce", attempt, counters
        )
        counters.add(REDUCE_OUTPUT_RECORDS, len(produced))
        output.extend(produced)
        counters.merge(context.counters)
        return elapsed


def _group_by_key(records: list[KeyValue]) -> list[tuple[Any, list[Any]]]:
    """Sort-and-group, as the shuffle does between map and reduce."""
    grouped: dict[Any, list[Any]] = {}
    for key, value in records:
        grouped.setdefault(key, []).append(value)
    try:
        ordered_keys = sorted(grouped)
    except TypeError:
        ordered_keys = sorted(grouped, key=repr)
    return [(key, grouped[key]) for key in ordered_keys]
