"""Baseline indexes and comparators from the paper's evaluation."""

from repro.baselines.hengine import HEngineIndex
from repro.baselines.hmsearch import HmSearchIndex
from repro.baselines.lsb_tree import LSBTreeIndex
from repro.baselines.lsh import E2LSHIndex
from repro.baselines.multi_hash import MultiHashTableIndex
from repro.baselines.nested_loops import NestedLoopsIndex

__all__ = [
    "HEngineIndex",
    "HmSearchIndex",
    "LSBTreeIndex",
    "E2LSHIndex",
    "MultiHashTableIndex",
    "NestedLoopsIndex",
]
