"""Nested-Loops baseline: vectorized linear scan (Section 6's "naive").

The honest version of the paper's "linearly XOR and count" baseline: all
codes live in one packed ``uint64`` array and a query is a single
vectorized XOR + popcount pass.  There is no structure to maintain, so
inserts and deletes are list operations.
"""

from __future__ import annotations

import numpy as np

from repro.core.bitvector import (
    CodeSet,
    batch_hamming,
    batch_hamming_wide,
    pack_codes_wide,
)
from repro.core.errors import IndexStateError
from repro.core.index_base import HammingIndex, IndexStats


class NestedLoopsIndex(HammingIndex):
    """Flat code array scanned in full for every query."""

    def __init__(self, code_length: int) -> None:
        super().__init__(code_length)
        self._codes: list[int] = []
        self._ids: list[int] = []
        self._packed: np.ndarray | None = None

    def _bulk_load(self, codes: CodeSet) -> None:
        self._codes = list(codes.codes)
        self._ids = list(codes.ids)
        self._size = len(self._codes)
        self._packed = None

    def _distances(self, query: int) -> np.ndarray:
        """Vectorized distances from every stored code to ``query``;
        codes longer than 64 bits use the multi-word kernel."""
        if self._code_length <= 64:
            if self._packed is None:
                self._packed = np.asarray(self._codes, dtype=np.uint64)
            return batch_hamming(self._packed, query)
        if self._packed is None:
            self._packed = pack_codes_wide(self._codes, self._code_length)
        return batch_hamming_wide(self._packed, query)

    def search(self, query: int, threshold: int) -> list[int]:
        self._check_query(query, threshold)
        self.last_search_ops = len(self._codes)
        if not self._codes:
            return []
        distances = self._distances(query)
        return [
            self._ids[i] for i in np.flatnonzero(distances <= threshold)
        ]

    def search_with_distances(
        self, query: int, threshold: int
    ) -> list[tuple[int, int]]:
        """(tuple id, distance) pairs for the kNN front-end."""
        self._check_query(query, threshold)
        self.last_search_ops = len(self._codes)
        if not self._codes:
            return []
        distances = self._distances(query)
        return [
            (self._ids[i], int(distances[i]))
            for i in np.flatnonzero(distances <= threshold)
        ]

    def insert(self, code: int, tuple_id: int) -> None:
        self._check_query(code, 0)
        self._codes.append(code)
        self._ids.append(tuple_id)
        self._packed = None
        self._size += 1

    def delete(self, code: int, tuple_id: int) -> None:
        self._check_query(code, 0)
        for position, (stored, stored_id) in enumerate(
            zip(self._codes, self._ids)
        ):
            if stored == code and stored_id == tuple_id:
                del self._codes[position]
                del self._ids[position]
                self._packed = None
                self._size -= 1
                return
        raise IndexStateError(
            f"tuple {tuple_id} with code {code:#x} not present"
        )

    def stats(self) -> IndexStats:
        return IndexStats(
            nodes=1,
            edges=0,
            entries=len(self._codes),
            code_bits=len(self._codes) * self._code_length,
        )
