"""MultiHashTable baseline (Manku, Jain, Das Sarma; WWW 2007).

The state-of-the-art comparator the paper calls MH-4 / MH-10.  Manku's
design for a distance threshold ``h``: cut the code into ``b = h + c``
blocks and build one hash table per *combination* of ``c`` blocks, keyed
by the concatenation of those blocks.  Codes within distance ``h`` leave
at least ``c`` blocks untouched, so one table finds them with an exact
key probe; candidates are verified with a full XOR.

The table count is ``C(h + c, c)``: with the paper's default ``h = 3``,
``c = 1`` gives the 4-table configuration (single-block keys) and
``c = 2`` the 10-table one (pair keys).  More tables mean longer keys,
hence smaller buckets and faster queries — and one more full copy of the
dataset per table, the memory cost Table 4 charges this approach with.

Queries beyond the design threshold stay exact by probing each key
within a radius derived from the pigeonhole bound (the ``c`` least-
errored blocks carry at most ``floor(c * T / b)`` differing bits).
"""

from __future__ import annotations

from itertools import combinations
from math import comb

from repro.core.errors import IndexStateError, InvalidParameterError
from repro.core.index_base import HammingIndex, IndexStats

#: Paper configurations: "we limit ourselves to just 4 and 10 hash tables".
DEFAULT_NUM_TABLES = 4
#: Default design threshold (the paper's h = 3).
DEFAULT_DESIGN_THRESHOLD = 3


def block_boundaries(code_length: int, blocks: int) -> list[tuple[int, int]]:
    """(shift, width) of each block, most significant block first.

    Widths differ by at most one bit, e.g. 9 bits over 4 blocks gives
    widths 3, 2, 2, 2.
    """
    if not 1 <= blocks <= code_length:
        raise InvalidParameterError(
            f"need 1 <= blocks <= code length, got {blocks}/{code_length}"
        )
    base, extra = divmod(code_length, blocks)
    boundaries = []
    position = 0
    for index in range(blocks):
        width = base + (1 if index < extra else 0)
        shift = code_length - position - width
        boundaries.append((shift, width))
        position += width
    return boundaries


def variants_within(value: int, width: int, radius: int) -> list[int]:
    """All ``width``-bit values within ``radius`` bit flips of ``value``."""
    results = [value]
    for flips in range(1, radius + 1):
        for positions in combinations(range(width), flips):
            flipped = value
            for position in positions:
                flipped ^= 1 << position
            results.append(flipped)
    return results


def probe_count(width: int, radius: int) -> int:
    """Size of :func:`variants_within`'s enumeration, without building it.

    Probe-based indexes compare this against their entry count: once a
    query threshold pushes the enumeration past the number of stored
    entries, probing is strictly worse than scanning the table, so they
    degrade to the scan (still exact).  Without the guard, a wide
    segment at a large threshold would enumerate astronomically many
    probes (C(64, 15) is ~10^15).
    """
    return sum(comb(width, flips) for flips in range(radius + 1))


class _Table:
    """One hash table: the key-block combination and its buckets."""

    __slots__ = ("blocks", "key_width", "buckets")

    def __init__(self, blocks: tuple[int, ...], key_width: int) -> None:
        self.blocks = blocks
        self.key_width = key_width
        self.buckets: dict[int, list[tuple[int, int]]] = {}


class MultiHashTableIndex(HammingIndex):
    """Manku's combination-keyed multi-table index.

    Args:
        code_length: bit length of indexed codes.
        num_tables: table budget; the largest combination design
            ``C(h + c, c) <= num_tables`` is used (4 -> single-block
            keys, 10 -> pair keys for ``h = 3``).
        design_threshold: the distance threshold ``h`` the block layout
            is sized for.
    """

    def __init__(
        self,
        code_length: int,
        num_tables: int = DEFAULT_NUM_TABLES,
        design_threshold: int = DEFAULT_DESIGN_THRESHOLD,
    ) -> None:
        super().__init__(code_length)
        if num_tables < 1:
            raise InvalidParameterError("num_tables must be positive")
        if design_threshold < 1:
            raise InvalidParameterError("design_threshold must be positive")
        self._design = design_threshold
        key_blocks = self._choose_key_blocks(
            code_length, num_tables, design_threshold
        )
        self._num_blocks = min(design_threshold + key_blocks, code_length)
        self._boundaries = block_boundaries(code_length, self._num_blocks)
        key_blocks = min(key_blocks, self._num_blocks)
        self._tables = [
            _Table(
                blocks,
                sum(self._boundaries[i][1] for i in blocks),
            )
            for blocks in combinations(range(self._num_blocks), key_blocks)
        ]

    @staticmethod
    def _choose_key_blocks(
        code_length: int, num_tables: int, design: int
    ) -> int:
        """Largest c with C(design + c, c) <= num_tables (at least 1)."""
        chosen = 1
        c = 1
        while design + c + 1 <= code_length and comb(
            design + c + 1, c + 1
        ) <= num_tables:
            c += 1
            chosen = c
        return chosen

    @property
    def num_tables(self) -> int:
        return len(self._tables)

    @property
    def num_blocks(self) -> int:
        return self._num_blocks

    def _key(self, code: int, table: _Table) -> int:
        key = 0
        for block in table.blocks:
            shift, width = self._boundaries[block]
            key = (key << width) | ((code >> shift) & ((1 << width) - 1))
        return key

    # -- maintenance -------------------------------------------------------

    def insert(self, code: int, tuple_id: int) -> None:
        self._check_query(code, 0)
        entry = (code, tuple_id)
        for table in self._tables:
            table.buckets.setdefault(self._key(code, table), []).append(
                entry
            )
        self._size += 1

    def delete(self, code: int, tuple_id: int) -> None:
        self._check_query(code, 0)
        entry = (code, tuple_id)
        first = self._tables[0]
        if entry not in first.buckets.get(self._key(code, first), []):
            raise IndexStateError(
                f"tuple {tuple_id} with code {code:#x} not present"
            )
        for table in self._tables:
            key = self._key(code, table)
            bucket = table.buckets[key]
            bucket.remove(entry)
            if not bucket:
                del table.buckets[key]
        self._size -= 1

    # -- search ------------------------------------------------------------

    def _probe_radius(self, threshold: int) -> int:
        """Per-key probe radius keeping the answer exact.

        Zero within the design threshold (some key combination is
        untouched); beyond it, the ``c`` least-errored blocks carry at
        most ``floor(c * T / b)`` differing bits.
        """
        if threshold <= self._num_blocks - len(self._tables[0].blocks):
            return 0
        key_blocks = len(self._tables[0].blocks)
        return (key_blocks * threshold) // self._num_blocks

    def search(self, query: int, threshold: int) -> list[int]:
        return [
            tuple_id
            for tuple_id, _ in self.search_with_distances(query, threshold)
        ]

    def search_with_distances(
        self, query: int, threshold: int
    ) -> list[tuple[int, int]]:
        """(tuple id, distance) pairs; exact for any threshold."""
        self._check_query(query, threshold)
        radius = self._probe_radius(threshold)
        if radius and probe_count(
            self._tables[0].key_width, radius
        ) > len(self._tables) * max(self._size, 1):
            return self._scan_all(query, threshold)
        seen: set[tuple[int, int]] = set()
        results: list[tuple[int, int]] = []
        ops = 0
        for table in self._tables:
            query_key = self._key(query, table)
            for probe in variants_within(
                query_key, table.key_width, radius
            ):
                for entry in table.buckets.get(probe, ()):
                    if entry in seen:
                        continue
                    seen.add(entry)
                    code, tuple_id = entry
                    ops += 1
                    distance = (code ^ query).bit_count()
                    if distance <= threshold:
                        results.append((tuple_id, distance))
        self.last_search_ops = ops
        return results

    def _scan_all(
        self, query: int, threshold: int
    ) -> list[tuple[int, int]]:
        """Probe-degenerate fallback: verify every entry of one table."""
        results = []
        ops = 0
        for bucket in self._tables[0].buckets.values():
            for code, tuple_id in bucket:
                ops += 1
                distance = (code ^ query).bit_count()
                if distance <= threshold:
                    results.append((tuple_id, distance))
        self.last_search_ops = ops
        return results

    # -- accounting ----------------------------------------------------------

    def stats(self) -> IndexStats:
        nodes = sum(len(table.buckets) for table in self._tables)
        entries = self._size * len(self._tables)
        return IndexStats(
            nodes=nodes,
            edges=entries,
            entries=entries,
            code_bits=entries * self._code_length,
        )
