"""LSB-Tree baseline (Tao, Yi, Sheng, Kalnis; TODS 2010) for kNN-select.

The LSB-Tree first maps each ``d``-dimensional point to an
``m``-dimensional grid point through LSH projections (``m`` p-stable
projections with random offsets, quantized to cells), then converts the
grid point to its Z-order value — the bit-interleaving of the ``m``
quantized coordinates — and indexes the Z-values in a B-tree, realized
here, as in any single-node setting, by a sorted array probed with binary
search.  A forest of ``num_trees`` independent trees (fresh projections
per tree) boosts recall.

A kNN query locates its own Z-value in every tree and gathers the
``probe_width`` positional neighbours on both sides; the union of
candidates is ranked by true Euclidean distance.

The paper's Table 5 highlights the structural costs reproduced here: the
forest stores the dataset once per tree (25x space) and building it
means projecting, quantizing and sorting the whole dataset ``m`` times.
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

from repro.core.errors import IndexStateError, InvalidParameterError
from repro.hashing.zorder import interleave_matrix

#: Paper configuration: "we build the LSB-Tree with 25 trees".
DEFAULT_NUM_TREES = 25
DEFAULT_PROJECTION_DIMENSIONS = 16
DEFAULT_BITS_PER_DIMENSION = 4
DEFAULT_PROBE_WIDTH = 32


class _Tree:
    """One LSB-tree: projection parameters plus the sorted Z-array."""

    __slots__ = ("directions", "offsets", "low", "scale", "z_sorted", "rows")

    def __init__(self) -> None:
        self.directions: np.ndarray | None = None
        self.offsets: np.ndarray | None = None
        self.low: np.ndarray | None = None
        self.scale: np.ndarray | None = None
        self.z_sorted: list[int] = []
        self.rows: list[int] = []


class LSBTreeIndex:
    """A forest of LSH-projected Z-order B-trees.

    Args:
        num_trees: forest size ``m``.
        projection_dimensions: LSH projections per tree.
        bits_per_dimension: grid resolution per projected axis
            (``projection_dimensions * bits_per_dimension`` must be <= 64).
        probe_width: positional neighbours fetched per side per tree.
        seed: base seed; tree ``i`` draws from ``seed + i``.
    """

    def __init__(
        self,
        num_trees: int = DEFAULT_NUM_TREES,
        projection_dimensions: int = DEFAULT_PROJECTION_DIMENSIONS,
        bits_per_dimension: int = DEFAULT_BITS_PER_DIMENSION,
        probe_width: int = DEFAULT_PROBE_WIDTH,
        seed: int = 0,
    ) -> None:
        if num_trees < 1 or probe_width < 1:
            raise InvalidParameterError(
                "num_trees and probe_width must be positive"
            )
        if projection_dimensions < 1 or bits_per_dimension < 1:
            raise InvalidParameterError(
                "projection_dimensions and bits_per_dimension "
                "must be positive"
            )
        if projection_dimensions * bits_per_dimension > 64:
            raise InvalidParameterError(
                "projection_dimensions * bits_per_dimension must be <= 64"
            )
        self._num_trees = num_trees
        self._dims = projection_dimensions
        self._bits = bits_per_dimension
        self._probe_width = probe_width
        self._seed = seed
        self._vectors: np.ndarray | None = None
        self._trees: list[_Tree] = []

    @property
    def num_trees(self) -> int:
        return self._num_trees

    def fit(self, vectors: np.ndarray) -> "LSBTreeIndex":
        """Index the rows of ``vectors`` (ids are row positions)."""
        data = np.asarray(vectors, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] < 1:
            raise InvalidParameterError("fit expects a non-empty 2-D matrix")
        self._vectors = data
        self._trees = []
        for tree_index in range(self._num_trees):
            rng = np.random.default_rng(self._seed + tree_index)
            tree = _Tree()
            tree.directions = rng.standard_normal((data.shape[1], self._dims))
            projected = data @ tree.directions
            low = projected.min(axis=0)
            extent = np.maximum(projected.max(axis=0) - low, 1e-12)
            tree.offsets = rng.uniform(0.0, extent)
            tree.low = low
            tree.scale = ((1 << self._bits) - 1) / (2.0 * extent)
            z_values = self._z_values(tree, projected)
            order = np.argsort(z_values, kind="stable")
            tree.z_sorted = z_values[order].tolist()
            tree.rows = order.tolist()
            self._trees.append(tree)
        return self

    def _z_values(self, tree: _Tree, projected: np.ndarray) -> np.ndarray:
        assert tree.low is not None
        cells = (projected - tree.low + tree.offsets) * tree.scale
        grid = np.clip(cells, 0, (1 << self._bits) - 1).astype(np.int64)
        return interleave_matrix(grid, self._bits)

    def query(self, vector: np.ndarray, k: int) -> list[tuple[int, float]]:
        """``k`` nearest rows as (row id, Euclidean distance), sorted."""
        if self._vectors is None:
            raise IndexStateError("LSB-Tree queried before fit")
        if k < 1:
            raise InvalidParameterError("k must be positive")
        point = np.asarray(vector, dtype=np.float64).reshape(1, -1)
        candidates: set[int] = set()
        width = max(self._probe_width, k)
        for tree in self._trees:
            assert tree.directions is not None
            z_value = int(self._z_values(tree, point @ tree.directions)[0])
            position = bisect_left(tree.z_sorted, z_value)
            low = max(0, position - width)
            high = min(len(tree.rows), position + width)
            candidates.update(tree.rows[low:high])
        if len(candidates) < k:
            candidates = set(range(self._vectors.shape[0]))
        rows_array = np.fromiter(candidates, dtype=np.int64)
        distances = np.linalg.norm(self._vectors[rows_array] - point[0], axis=1)
        order = np.argsort(distances, kind="stable")[:k]
        return [
            (int(rows_array[i]), float(distances[i])) for i in order
        ]
