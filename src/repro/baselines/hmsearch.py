"""HmSearch baseline (Zhang, Qin, Wang, Sun, Lu; SSDBM 2013).

HmSearch moves the variant enumeration to the *index* side: every code's
segments are stored together with all their one-bit-substitution
signatures, so a query probes each table with its exact segment value
only.  Queries get cheap; the index explodes — "the size of the index
increases dramatically, because HmSearch needs to generate large amounts
of unique signatures" (Section 2) — which is exactly the trade-off the
memory column of the benchmark surfaces.

With ``m = floor(h_max / 2) + 1`` segments, a code within the threshold
has a segment with at most one differing bit; that segment is found either
under its exact signature or under one of the stored one-bit variants.
"""

from __future__ import annotations

from repro.baselines.multi_hash import (
    block_boundaries,
    probe_count,
    variants_within,
)
from repro.core.errors import IndexStateError, InvalidParameterError
from repro.core.index_base import HammingIndex, IndexStats

DEFAULT_MAX_THRESHOLD = 3


class HmSearchIndex(HammingIndex):
    """Signature-enumerating index with exact-match query probes.

    Args:
        code_length: bit length of indexed codes.
        max_threshold: largest threshold answered without widening the
            query probes (beyond it, query-side variants kick in).
    """

    def __init__(
        self, code_length: int, max_threshold: int = DEFAULT_MAX_THRESHOLD
    ) -> None:
        super().__init__(code_length)
        if max_threshold < 0:
            raise InvalidParameterError("max_threshold must be >= 0")
        segments = min(max_threshold // 2 + 1, code_length)
        self._boundaries = block_boundaries(code_length, segments)
        self._tables: list[dict[int, list[tuple[int, int]]]] = [
            {} for _ in self._boundaries
        ]
        self._signatures = 0

    @property
    def num_segments(self) -> int:
        return len(self._tables)

    def _segment(self, code: int, table: int) -> int:
        shift, width = self._boundaries[table]
        return (code >> shift) & ((1 << width) - 1)

    def insert(self, code: int, tuple_id: int) -> None:
        self._check_query(code, 0)
        for table_index, table in enumerate(self._tables):
            _, width = self._boundaries[table_index]
            value = self._segment(code, table_index)
            for signature in variants_within(value, width, 1):
                table.setdefault(signature, []).append((code, tuple_id))
                self._signatures += 1
        self._size += 1

    def delete(self, code: int, tuple_id: int) -> None:
        self._check_query(code, 0)
        entry = (code, tuple_id)
        first_key = self._segment(code, 0)
        if entry not in self._tables[0].get(first_key, []):
            raise IndexStateError(
                f"tuple {tuple_id} with code {code:#x} not present"
            )
        for table_index, table in enumerate(self._tables):
            _, width = self._boundaries[table_index]
            value = self._segment(code, table_index)
            for signature in variants_within(value, width, 1):
                bucket = table[signature]
                bucket.remove(entry)
                self._signatures -= 1
                if not bucket:
                    del table[signature]
        self._size -= 1

    def search(self, query: int, threshold: int) -> list[int]:
        return [
            tuple_id
            for tuple_id, _ in self.search_with_distances(query, threshold)
        ]

    def search_with_distances(
        self, query: int, threshold: int
    ) -> list[tuple[int, int]]:
        """(tuple id, distance) pairs; exact for any threshold.

        Stored one-bit variants cover per-segment radius 1; any further
        radius required by a large threshold is enumerated on the query
        side, preserving exactness at a cost that mirrors the original
        system's degradation beyond its design threshold.
        """
        self._check_query(query, threshold)
        needed = threshold // len(self._tables)
        query_radius = max(0, needed - 1)
        widest = max(width for _, width in self._boundaries)
        if query_radius and probe_count(
            widest, query_radius
        ) > max(self._size, 1):
            # Enumerating more probes than entries is pointless: scan
            # the exact-signature buckets of one table instead.
            return self._scan_all(query, threshold)
        seen: set[tuple[int, int]] = set()
        results: list[tuple[int, int]] = []
        ops = 0
        for table_index, table in enumerate(self._tables):
            _, width = self._boundaries[table_index]
            value = self._segment(query, table_index)
            for probe in variants_within(value, width, query_radius):
                for entry in table.get(probe, ()):
                    if entry in seen:
                        continue
                    seen.add(entry)
                    code, tuple_id = entry
                    ops += 1
                    distance = (code ^ query).bit_count()
                    if distance <= threshold:
                        results.append((tuple_id, distance))
        self.last_search_ops = ops
        return results

    def _scan_all(
        self, query: int, threshold: int
    ) -> list[tuple[int, int]]:
        """Probe-degenerate fallback: verify each distinct entry once."""
        seen: set[tuple[int, int]] = set()
        results = []
        ops = 0
        for bucket in self._tables[0].values():
            for entry in bucket:
                if entry in seen:
                    continue
                seen.add(entry)
                code, tuple_id = entry
                ops += 1
                distance = (code ^ query).bit_count()
                if distance <= threshold:
                    results.append((tuple_id, distance))
        self.last_search_ops = ops
        return results

    def stats(self) -> IndexStats:
        nodes = sum(len(table) for table in self._tables)
        return IndexStats(
            nodes=nodes,
            edges=self._signatures,
            entries=self._signatures,
            code_bits=self._signatures * self._code_length,
        )
