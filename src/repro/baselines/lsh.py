"""E2LSH-style locality-sensitive hashing for kNN-select (Table 5).

The data-independent comparator of Section 6.1.4: ``L`` hash tables, each
keyed by the concatenation of ``k`` p-stable (Gaussian) projections
quantized to width-``w`` intervals (Datar et al. / Andoni & Indyk).  A
query collects the union of its buckets across tables and ranks the
candidates by true Euclidean distance; if the buckets underdeliver, the
scan falls back to the full dataset so the operation never returns fewer
than ``k`` answers (mirroring the repeated-query fallback of the paper's
kNN recipe).

The weakness the paper measures is inherent: the quantization grid is
data-independent ("the LSH approach assumes uniformity in the
distribution of the underlying data"), so real, clustered data lands in a
few huge buckets that must be scanned linearly.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import IndexStateError, InvalidParameterError

#: Paper configuration: "We use 20 hash tables for E2LSH."
DEFAULT_NUM_TABLES = 20
DEFAULT_PROJECTIONS_PER_TABLE = 8


class E2LSHIndex:
    """p-stable LSH over Euclidean vectors.

    Args:
        num_tables: number of independent hash tables ``L``.
        projections_per_table: concatenated projections ``k`` per table.
        bucket_width: quantization width ``w``; ``None`` derives it from
            the data's interquartile projection spread at :meth:`fit`.
        seed: RNG seed for the projection directions.
    """

    def __init__(
        self,
        num_tables: int = DEFAULT_NUM_TABLES,
        projections_per_table: int = DEFAULT_PROJECTIONS_PER_TABLE,
        bucket_width: float | None = None,
        seed: int = 0,
    ) -> None:
        if num_tables < 1 or projections_per_table < 1:
            raise InvalidParameterError(
                "num_tables and projections_per_table must be positive"
            )
        if bucket_width is not None and bucket_width <= 0:
            raise InvalidParameterError("bucket_width must be positive")
        self._num_tables = num_tables
        self._projections = projections_per_table
        self._bucket_width = bucket_width
        self._seed = seed
        self._vectors: np.ndarray | None = None
        self._directions: np.ndarray | None = None
        self._offsets: np.ndarray | None = None
        self._width: float = 1.0
        self._tables: list[dict[tuple[int, ...], list[int]]] = []

    @property
    def num_tables(self) -> int:
        return self._num_tables

    def fit(self, vectors: np.ndarray) -> "E2LSHIndex":
        """Index the rows of ``vectors`` (ids are row positions)."""
        data = np.asarray(vectors, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] < 1:
            raise InvalidParameterError("fit expects a non-empty 2-D matrix")
        rng = np.random.default_rng(self._seed)
        total = self._num_tables * self._projections
        self._directions = rng.standard_normal((data.shape[1], total))
        projected = data @ self._directions
        if self._bucket_width is None:
            spread = np.subtract(
                *np.percentile(projected, [75.0, 25.0])
            )
            self._width = float(max(spread, 1e-9))
        else:
            self._width = self._bucket_width
        self._offsets = rng.uniform(0.0, self._width, size=total)
        cells = np.floor((projected + self._offsets) / self._width).astype(
            np.int64
        )
        self._tables = [{} for _ in range(self._num_tables)]
        for row in range(data.shape[0]):
            for table_index in range(self._num_tables):
                key = self._key(cells[row], table_index)
                self._tables[table_index].setdefault(key, []).append(row)
        self._vectors = data
        return self

    def _key(self, cells: np.ndarray, table_index: int) -> tuple[int, ...]:
        start = table_index * self._projections
        return tuple(cells[start : start + self._projections].tolist())

    def query(self, vector: np.ndarray, k: int) -> list[tuple[int, float]]:
        """``k`` nearest rows as (row id, Euclidean distance), sorted."""
        if self._vectors is None:
            raise IndexStateError("E2LSH queried before fit")
        if k < 1:
            raise InvalidParameterError("k must be positive")
        point = np.asarray(vector, dtype=np.float64).reshape(-1)
        assert self._directions is not None and self._offsets is not None
        projected = point @ self._directions
        cells = np.floor((projected + self._offsets) / self._width).astype(
            np.int64
        )
        candidates: set[int] = set()
        for table_index, table in enumerate(self._tables):
            candidates.update(table.get(self._key(cells, table_index), ()))
        if len(candidates) < k:
            candidates = set(range(self._vectors.shape[0]))
        rows = np.fromiter(candidates, dtype=np.int64)
        distances = np.linalg.norm(self._vectors[rows] - point, axis=1)
        order = np.argsort(distances, kind="stable")[:k]
        return [
            (int(rows[i]), float(distances[i])) for i in order
        ]
