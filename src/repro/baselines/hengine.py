"""HEngine baseline (Liu, Shen, Torng; ICDE 2011).

HEngine improves on the MultiHashTable's memory by cutting the code into
only ``r = floor(h_max / 2) + 1`` segments: within the threshold, some
segment carries at most one differing bit, so the query probes each
segment table with the segment value *and all its one-bit variants* ("it
needs to generate one-bit differing binary code with each query, then
carry out several binary searches over sorted hash tables").  Tables are
kept as sorted arrays probed by binary search, per the original design.

The sensitivity to ``h`` the paper observes is structural: the segment
count is fixed at build time from ``max_threshold``, so querying beyond it
forces a larger per-segment probe radius and the variant enumeration
blows up (Figure 6).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort

from repro.baselines.multi_hash import (
    block_boundaries,
    probe_count,
    variants_within,
)
from repro.core.errors import IndexStateError, InvalidParameterError
from repro.core.index_base import HammingIndex, IndexStats

#: Paper default threshold; r = floor(3/2) + 1 = 2 segments.
DEFAULT_MAX_THRESHOLD = 3


class HEngineIndex(HammingIndex):
    """Sorted segment tables with query-side one-bit variant probing.

    Args:
        code_length: bit length of indexed codes.
        max_threshold: the Hamming threshold the segmentation is sized
            for.  Queries beyond it stay exact but probe wider.
    """

    def __init__(
        self, code_length: int, max_threshold: int = DEFAULT_MAX_THRESHOLD
    ) -> None:
        super().__init__(code_length)
        if max_threshold < 0:
            raise InvalidParameterError("max_threshold must be >= 0")
        segments = min(max_threshold // 2 + 1, code_length)
        self._boundaries = block_boundaries(code_length, segments)
        # One sorted array of (segment value, code, tuple id) per segment.
        self._tables: list[list[tuple[int, int, int]]] = [
            [] for _ in self._boundaries
        ]

    @property
    def num_segments(self) -> int:
        return len(self._tables)

    def _segment(self, code: int, table: int) -> int:
        shift, width = self._boundaries[table]
        return (code >> shift) & ((1 << width) - 1)

    def insert(self, code: int, tuple_id: int) -> None:
        self._check_query(code, 0)
        for table_index, table in enumerate(self._tables):
            key = self._segment(code, table_index)
            insort(table, (key, code, tuple_id))
        self._size += 1

    def delete(self, code: int, tuple_id: int) -> None:
        self._check_query(code, 0)
        probes = []
        for table_index, table in enumerate(self._tables):
            key = self._segment(code, table_index)
            position = bisect_left(table, (key, code, tuple_id))
            if (
                position >= len(table)
                or table[position] != (key, code, tuple_id)
            ):
                raise IndexStateError(
                    f"tuple {tuple_id} with code {code:#x} not present"
                )
            probes.append((table, position))
        for table, position in probes:
            del table[position]
        self._size -= 1

    def _bucket(
        self, table: list[tuple[int, int, int]], key: int
    ) -> list[tuple[int, int, int]]:
        """All entries with segment value ``key`` via binary search."""
        low = bisect_left(table, (key,))
        high = bisect_right(table, (key, float("inf"), float("inf")))
        return table[low:high]

    def search(self, query: int, threshold: int) -> list[int]:
        return [
            tuple_id
            for tuple_id, _ in self.search_with_distances(query, threshold)
        ]

    def search_with_distances(
        self, query: int, threshold: int
    ) -> list[tuple[int, int]]:
        """(tuple id, distance) pairs; exact for any threshold."""
        self._check_query(query, threshold)
        radius = threshold // len(self._tables)
        widest = max(width for _, width in self._boundaries)
        if radius and probe_count(widest, radius) > max(self._size, 1):
            # Enumerating more probes than entries is pointless: scan.
            return self._scan_all(query, threshold)
        seen: set[tuple[int, int]] = set()
        results: list[tuple[int, int]] = []
        ops = 0
        for table_index, table in enumerate(self._tables):
            _, width = self._boundaries[table_index]
            query_segment = self._segment(query, table_index)
            for probe in variants_within(query_segment, width, radius):
                for _, code, tuple_id in self._bucket(table, probe):
                    if (code, tuple_id) in seen:
                        continue
                    seen.add((code, tuple_id))
                    ops += 1
                    distance = (code ^ query).bit_count()
                    if distance <= threshold:
                        results.append((tuple_id, distance))
        self.last_search_ops = ops
        return results

    def _scan_all(
        self, query: int, threshold: int
    ) -> list[tuple[int, int]]:
        """Probe-degenerate fallback: verify every entry of one table."""
        results = []
        ops = 0
        for _, code, tuple_id in self._tables[0]:
            ops += 1
            distance = (code ^ query).bit_count()
            if distance <= threshold:
                results.append((tuple_id, distance))
        self.last_search_ops = ops
        return results

    def stats(self) -> IndexStats:
        entries = self._size * len(self._tables)
        return IndexStats(
            nodes=len(self._tables),
            edges=0,
            entries=entries,
            code_bits=entries * self._code_length,
        )
