"""repro: reproduction of the EDBT 2015 HA-Index paper.

Efficient Processing of Hamming-Distance-Based Similarity-Search
Queries Over MapReduce (Tang, Yu, Aref, Malluhi, Ouzzani).

Public API highlights:

* :class:`repro.core.DynamicHAIndex` / :class:`repro.core.StaticHAIndex`
  — the paper's indexes;
* :func:`repro.core.hamming_select` / :func:`repro.core.hamming_join` /
  :func:`repro.core.knn_select` — query front-ends (all take
  ``weights=`` for weighted Hamming distance);
* :func:`repro.core.weighted_select` / :func:`repro.core.weighted_knn`
  — the weighted query plane (:mod:`repro.core.weighted`);
* :mod:`repro.hashing` — Spectral Hashing and friends;
* :mod:`repro.mapreduce` — the in-process MapReduce runtime;
* :func:`repro.distributed.mapreduce_hamming_join` — the three-phase
  distributed join (Options A and B).
"""

from repro.core import (
    CodeSet,
    DynamicHAIndex,
    HammingIndex,
    IndexStats,
    MaskedPattern,
    RadixTreeIndex,
    ReproError,
    StaticHAIndex,
    hamming_distance,
    hamming_join,
    hamming_select,
    knn_join,
    knn_select,
    hamming_difference,
    hamming_distinct,
    hamming_intersect,
    nested_loops_join,
    self_join,
    WeightedHammingIndex,
    Weights,
    weighted_hamming,
    weighted_knn,
    weighted_select,
)

__version__ = "1.0.0"

__all__ = [
    "CodeSet",
    "DynamicHAIndex",
    "HammingIndex",
    "IndexStats",
    "MaskedPattern",
    "RadixTreeIndex",
    "ReproError",
    "StaticHAIndex",
    "hamming_distance",
    "hamming_join",
    "hamming_select",
    "knn_join",
    "knn_select",
    "hamming_difference",
    "hamming_distinct",
    "hamming_intersect",
    "nested_loops_join",
    "self_join",
    "WeightedHammingIndex",
    "Weights",
    "weighted_hamming",
    "weighted_knn",
    "weighted_select",
    "__version__",
]
