"""Distributed (MapReduce) Hamming-join and its comparators."""

from repro.distributed.global_index import (
    CACHE_GLOBAL_INDEX,
    CACHE_HASH,
    CACHE_PIVOTS,
    GlobalIndexResult,
    build_global_index,
)
from repro.distributed.hamming_join import (
    HammingJoinReport,
    mapreduce_hamming_join,
    preprocess,
)
from repro.distributed.hamming_select import (
    HammingSelectReport,
    mapreduce_hamming_select,
)
from repro.distributed.pgbj import PGBJReport, pgbj_knn_join
from repro.distributed.pivots import (
    gray_range_partitioner,
    partition_balance,
    partition_of,
    select_pivots,
    split_by_pivots,
)
from repro.distributed.pmh import PMHReport, pmh_hamming_join
from repro.distributed.sampling import reservoir_sample

__all__ = [
    "CACHE_GLOBAL_INDEX",
    "CACHE_HASH",
    "CACHE_PIVOTS",
    "GlobalIndexResult",
    "build_global_index",
    "HammingJoinReport",
    "mapreduce_hamming_join",
    "preprocess",
    "HammingSelectReport",
    "mapreduce_hamming_select",
    "PGBJReport",
    "pgbj_knn_join",
    "gray_range_partitioner",
    "partition_balance",
    "partition_of",
    "select_pivots",
    "split_by_pivots",
    "PMHReport",
    "pmh_hamming_join",
    "reservoir_sample",
]
