"""Batched Hamming-select over MapReduce.

The paper's MapReduce treatment centres on the join, but the same
machinery answers *batches* of Hamming-select queries — the workload of
the search-engine scenario in Section 1, where streams of query images
arrive against one indexed collection:

1. preprocessing as in the join (sample, learn hash, pick pivots);
2. one MapReduce job partitions the dataset by Gray range, H-Builds a
   local HA-Index per partition and answers **all** queries of the batch
   against it (queries travel via the distributed cache, so each query
   is broadcast once rather than shuffled per tuple).

Every query is answered exactly: a query's matches within a partition
are found by that partition's local index, and partitions cover the
dataset.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from repro.core.bitvector import CodeSet
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.errors import InvalidParameterError
from repro.distributed.hamming_join import Record, preprocess
from repro.mapreduce.checkpoint import CheckpointStore
from repro.distributed.pivots import partition_of
from repro.hashing.base import SimilarityHash
from repro.mapreduce.job import MapReduceJob, TaskContext
from repro.mapreduce.partitioner import RangePartitioner
from repro.mapreduce.runtime import MapReduceRuntime
from repro.obs.trace import trace_span

_CACHE_QUERIES = "hamming.select-queries"
_CACHE_THRESHOLD = "hamming.select-threshold"


@dataclass
class HammingSelectReport:
    """Per-query matches plus pipeline accounting."""

    matches: dict[int, list[int]]
    preprocess_seconds: float = 0.0
    job_seconds: float = 0.0
    shuffle_bytes: int = 0
    partition_sizes: list[int] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.preprocess_seconds + self.job_seconds


def _encode_route_mapper(
    key: Any, value: Any, context: TaskContext
) -> Iterator[tuple[int, tuple[int, int]]]:
    hasher: SimilarityHash = context.cached("hamming.hash")
    partitioner: RangePartitioner = context.cached("hamming.pivots")
    code = hasher.encode(np.asarray(value)).codes[0]
    yield partition_of(code, partitioner), (code, key)


def _make_select_reducer(window: int, max_depth: int):
    def reducer(
        key: Any, values: list[Any], context: TaskContext
    ) -> Iterator[tuple[int, tuple[int, int]]]:
        hasher: SimilarityHash = context.cached("hamming.hash")
        queries: list[tuple[int, int]] = context.cached(_CACHE_QUERIES)
        threshold: int = context.cached(_CACHE_THRESHOLD)
        codes = CodeSet(
            [code for code, _ in values],
            hasher.num_bits,
            ids=[tuple_id for _, tuple_id in values],
        )
        local = DynamicHAIndex.build(
            codes, window=window, max_depth=max_depth
        )
        for query_id, query_code in queries:
            for tuple_id in local.search(query_code, threshold):
                yield query_id, (tuple_id, key)

    return reducer


def mapreduce_hamming_select(
    runtime: MapReduceRuntime,
    records: list[Record],
    query_vectors: list[tuple[int, np.ndarray]],
    threshold: int,
    num_bits: int = 32,
    sample_size: int = 1_000,
    window: int = 8,
    max_depth: int = 6,
    seed: int = 0,
    checkpoints: CheckpointStore | None = None,
) -> HammingSelectReport:
    """Answer a batch of ``h-select`` queries against ``records``.

    ``query_vectors`` are (query id, vector) pairs hashed with the same
    learned function as the dataset.  Returns, per query id, the ids of
    all records whose code lies within ``threshold``.

    With a :class:`CheckpointStore`, the preprocessing output (learned
    hash + pivots) persists across invocations, so re-running the batch
    after a mid-pipeline abort skips re-learning the hash.
    """
    if threshold < 0:
        raise InvalidParameterError("threshold must be non-negative")
    if not query_vectors:
        raise InvalidParameterError("no queries supplied")
    report = HammingSelectReport(matches={})
    cluster = runtime.cluster

    with trace_span(
        "dist_select", queries=len(query_vectors), threshold=threshold
    ) as select_span:
        with trace_span("dist_select.preprocess"):
            started = time.perf_counter()
            hasher, _ = preprocess(
                runtime, records, query_vectors,
                num_bits=num_bits, sample_size=sample_size, seed=seed,
                checkpoints=checkpoints,
            )
            query_matrix = np.asarray(
                [vector for _, vector in query_vectors]
            )
            query_codes = hasher.encode(query_matrix)
            query_batch = [
                (query_id, code)
                for (query_id, _), code in zip(
                    query_vectors, query_codes
                )
            ]
            cluster.broadcast(_CACHE_QUERIES, query_batch)
            cluster.broadcast(_CACHE_THRESHOLD, threshold)
            report.preprocess_seconds = time.perf_counter() - started

        job = MapReduceJob(
            name="hamming-select-batch",
            mapper=_encode_route_mapper,
            reducer=_make_select_reducer(window, max_depth),
            partitioner=lambda key, n: key % n,
            num_reducers=cluster.num_workers,
        )
        with trace_span("dist_select.job") as span:
            result = runtime.run(job, records)
            report.job_seconds = result.simulated_seconds
            report.shuffle_bytes = result.counters.get("shuffle.bytes")
            span.annotate(
                simulated_seconds=report.job_seconds,
                shuffle_bytes=report.shuffle_bytes,
            )

        matches: dict[int, list[int]] = {
            query_id: [] for query_id, _ in query_vectors
        }
        partition_counts: dict[int, int] = {}
        for query_id, (tuple_id, partition) in result.output:
            matches[query_id].append(tuple_id)
            partition_counts[partition] = (
                partition_counts.get(partition, 0) + 1
            )
        report.matches = {
            query_id: sorted(ids) for query_id, ids in matches.items()
        }
        # Matches produced per partition (not dataset partition sizes).
        report.partition_sizes = [
            partition_counts[key] for key in sorted(partition_counts)
        ]
        select_span.annotate(simulated_seconds=report.total_seconds)
    return report
