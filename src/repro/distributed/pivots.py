"""Histogram pivot selection over the Gray order (Section 5.1).

After hashing, the sampled binary codes are sorted in Gray order and an
equi-depth histogram yields ``N - 1`` pivot values: "This guarantees that
each partition receives approximately the same amount of data, where data
in the various partitions is ordered according to the Gray order."
A tuple with code ``U`` belongs to partition ``m`` when
``Pv_m <= gray_rank(U) < Pv_{m+1}`` — realized by a
:class:`~repro.mapreduce.partitioner.RangePartitioner` over Gray ranks.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.bitvector import CodeSet
from repro.core.errors import InvalidParameterError
from repro.core.gray import gray_rank
from repro.mapreduce.partitioner import RangePartitioner


def select_pivots(
    sample_codes: Sequence[int], num_partitions: int
) -> list[int]:
    """Equi-depth pivots (Gray ranks) from a sample of binary codes.

    Returns ``num_partitions - 1`` non-decreasing Gray-rank boundaries.
    A small or highly duplicated sample may yield repeated pivots; the
    range partitioner tolerates that (some partitions simply stay empty,
    which mirrors what happens on a real cluster with a bad sample).
    """
    if num_partitions < 1:
        raise InvalidParameterError("num_partitions must be positive")
    if not sample_codes:
        raise InvalidParameterError("cannot select pivots from no codes")
    ranks = sorted(gray_rank(code) for code in sample_codes)
    pivots = []
    for boundary in range(1, num_partitions):
        position = boundary * len(ranks) // num_partitions
        pivots.append(ranks[min(position, len(ranks) - 1)])
    return pivots


def gray_range_partitioner(pivots: Sequence[int]) -> RangePartitioner:
    """A range partitioner keyed by Gray rank boundaries."""
    return RangePartitioner(pivots)


def partition_of(code: int, partitioner: RangePartitioner) -> int:
    """Partition id of a binary code under Gray-rank range partitioning."""
    return partitioner(gray_rank(code), partitioner.num_partitions)


def split_by_pivots(
    codes: CodeSet, pivots: Sequence[int]
) -> list[CodeSet]:
    """Partition a :class:`CodeSet` into per-shard sets by Gray rank.

    Returns ``len(pivots) + 1`` code sets (some possibly empty), each
    holding the tuples whose Gray rank falls in the corresponding pivot
    range — the dataset split the sharded serving plane and the
    MapReduce reducers both consume.  Tuple ids ride along, and within
    a shard the original order is preserved (stable split).
    """
    partitioner = gray_range_partitioner(pivots)
    buckets: list[list[int]] = [
        [] for _ in range(partitioner.num_partitions)
    ]
    for position, code in enumerate(codes.codes):
        buckets[partition_of(code, partitioner)].append(position)
    return [codes.subset(indices) for indices in buckets]


def partition_balance(counts: Sequence[int]) -> float:
    """Load-balance factor: max partition size over the ideal mean.

    1.0 is perfect balance; the paper's histogram pivots should keep this
    close to 1 even for skewed data (evaluated in the Figure 10 bench).
    """
    total = sum(counts)
    if total == 0 or not counts:
        return 1.0
    mean = total / len(counts)
    return max(counts) / mean
