"""PMH: Parallel Hamming-join via MultiHashTable (Manku et al. [4]).

The paper's distributed comparator: "[4] extends the sequential approach
to MapReduce by broadcasting Table R into each server, then applying a
sequential algorithm between R and S.  This approach is subject to a very
heavy shuffling cost" (Section 2).  Concretely:

* the full code table of R is broadcast to every worker (``O(m N)``
  shuffle — the term that dominates Figure 7's PMH curve),
* S is hash-partitioned, and each reducer builds a MultiHashTable over
  the broadcast R codes and probes it with its S partition.

``num_tables`` is the PMH-10 knob of Section 6.2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from repro.baselines.multi_hash import MultiHashTableIndex
from repro.distributed.hamming_join import Record, preprocess
from repro.hashing.base import SimilarityHash
from repro.mapreduce.job import MapReduceJob, TaskContext
from repro.mapreduce.runtime import MapReduceRuntime

_CACHE_R_INDEX = "pmh.r-index"
_CACHE_THRESHOLD = "pmh.threshold"


@dataclass
class PMHReport:
    """PMH join output and accounting, comparable to HammingJoinReport."""

    pairs: list[tuple[int, int]]
    preprocess_seconds: float = 0.0
    encode_seconds: float = 0.0
    join_seconds: float = 0.0
    shuffle_bytes: int = 0
    table_broadcast_bytes: int = 0
    probe_shuffle_bytes: int = 0
    broadcast_seconds: float = 0.0
    partition_sizes: list[int] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """Broadcast transfer is folded into ``join_seconds`` (the job
        following the broadcasts); ``broadcast_seconds`` breaks it out."""
        return (
            self.preprocess_seconds
            + self.encode_seconds
            + self.join_seconds
        )

    @property
    def data_shuffle_bytes(self) -> int:
        """Data-dependent shuffle: the replicated-table broadcast plus
        the probe-side record shuffle (excludes the hash broadcast every
        approach pays identically; the Figure 7 metric)."""
        return self.table_broadcast_bytes + self.probe_shuffle_bytes


def _encode_mapper(key: Any, value: Any, context: TaskContext):
    hasher: SimilarityHash = context.cached("hamming.hash")
    code = hasher.encode(np.asarray(value)).codes[0]
    yield key % context.cached("pmh.num-partitions"), (code, key)


def _pmh_reducer(
    key: Any, values: list[Any], context: TaskContext
) -> Iterator[tuple[int, int]]:
    index: MultiHashTableIndex = context.cached(_CACHE_R_INDEX)
    threshold: int = context.cached(_CACHE_THRESHOLD)
    for code, s_id in values:
        for r_id in index.search(code, threshold):
            yield r_id, s_id


def pmh_hamming_join(
    runtime: MapReduceRuntime,
    left_records: list[Record],
    right_records: list[Record],
    threshold: int,
    num_bits: int = 32,
    num_tables: int = 10,
    sample_size: int = 1_000,
    exclude_self_pairs: bool = False,
    seed: int = 0,
) -> PMHReport:
    """Distributed ``h-join`` via broadcast R + per-worker MultiHashTable."""
    report = PMHReport(pairs=[])
    cluster = runtime.cluster
    shuffle_before = cluster.counters.total_shuffle_bytes

    started = time.perf_counter()
    hasher, _ = preprocess(
        runtime,
        left_records,
        right_records,
        num_bits=num_bits,
        sample_size=sample_size,
        seed=seed,
    )
    report.preprocess_seconds = time.perf_counter() - started

    # Encode R centrally, build the replicated multi-table structure and
    # broadcast it whole — the design Section 2 criticizes: "rearranging
    # multiple indexes and multiple versions of the same data can be
    # quite inefficient" under MapReduce.  Every entry is duplicated once
    # per hash table, so PMH-10 ships ~10x the data volume.
    started = time.perf_counter()
    vectors = np.asarray([vector for _, vector in left_records])
    r_codes = hasher.encode(vectors).with_ids(
        [r_id for r_id, _ in left_records]
    )
    r_index = MultiHashTableIndex.build(r_codes, num_tables=num_tables)
    report.encode_seconds = time.perf_counter() - started
    table_broadcast_before = cluster.counters.get("broadcast.bytes")
    cluster.broadcast(_CACHE_R_INDEX, r_index)
    report.table_broadcast_bytes = (
        cluster.counters.get("broadcast.bytes") - table_broadcast_before
    )
    cluster.broadcast(_CACHE_THRESHOLD, threshold)
    cluster.broadcast("pmh.num-partitions", cluster.num_workers)

    job = MapReduceJob(
        name="pmh-join",
        mapper=_encode_mapper,
        reducer=_pmh_reducer,
        partitioner=lambda key, n: key % n,
        num_reducers=cluster.num_workers,
    )
    result = runtime.run(job, right_records)
    report.join_seconds = result.simulated_seconds
    report.probe_shuffle_bytes = result.counters.get("shuffle.bytes")
    report.shuffle_bytes = (
        cluster.counters.total_shuffle_bytes - shuffle_before
    )
    report.broadcast_seconds = result.broadcast_transfer_seconds
    pairs = list(result.output)
    if exclude_self_pairs:
        pairs = sorted({(a, b) for a, b in pairs if a < b})
    report.pairs = pairs
    return report
