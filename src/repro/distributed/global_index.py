"""Global HA-Index construction over MapReduce (Section 5.2).

The first MapReduce job of Figure 5: mappers hash each tuple of R to its
binary code (hash function and pivots come from the distributed cache)
and route it to its Gray-range partition; each reducer runs H-Build over
its partition, emitting a local HA-Index; a post-processing step merges
the local indexes into the global HA-Index that the join phase
broadcasts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro.core.bitvector import CodeSet
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.errors import IndexStateError
from repro.distributed.pivots import partition_of
from repro.hashing.base import SimilarityHash
from repro.mapreduce.checkpoint import (
    STAGE_INDEX_BUILD,
    CheckpointStore,
    fingerprint_records,
)
from repro.mapreduce.counters import CHECKPOINT_RESTORES, Counters
from repro.mapreduce.job import MapReduceJob, TaskContext
from repro.mapreduce.partitioner import RangePartitioner
from repro.mapreduce.runtime import JobResult, MapReduceRuntime

#: Distributed-cache keys shared by the build and join jobs.
CACHE_HASH = "hamming.hash"
CACHE_PIVOTS = "hamming.pivots"
CACHE_GLOBAL_INDEX = "hamming.global-index"


@dataclass
class GlobalIndexResult:
    """Output of the build phase."""

    index: DynamicHAIndex
    job: JobResult
    partition_sizes: list[int]
    restored: bool = False


def _encode_partition_mapper(
    key: Any, value: Any, context: TaskContext
) -> Iterator[tuple[int, tuple[int, int]]]:
    """(tuple id, vector) -> (partition id, (code, tuple id))."""
    hasher: SimilarityHash = context.cached(CACHE_HASH)
    partitioner: RangePartitioner = context.cached(CACHE_PIVOTS)
    code = hasher.encode(np.asarray(value)).codes[0]
    yield partition_of(code, partitioner), (code, key)


def _make_build_reducer(window: int, max_depth: int):
    def reducer(
        key: Any, values: list[Any], context: TaskContext
    ) -> Iterator[tuple[int, DynamicHAIndex]]:
        hasher: SimilarityHash = context.cached(CACHE_HASH)
        codes = CodeSet(
            [code for code, _ in values],
            hasher.num_bits,
            ids=[tuple_id for _, tuple_id in values],
        )
        local = DynamicHAIndex.build(
            codes, window=window, max_depth=max_depth
        )
        yield key, local

    return reducer


def build_global_index(
    runtime: MapReduceRuntime,
    records: list[tuple[int, np.ndarray]],
    window: int = 8,
    max_depth: int = 6,
    checkpoints: CheckpointStore | None = None,
) -> GlobalIndexResult:
    """Run the build job and merge the local indexes.

    ``records`` are (tuple id, feature vector) pairs of dataset R.  The
    hash function and the Gray-range partitioner must already be in the
    cluster's distributed cache under :data:`CACHE_HASH` and
    :data:`CACHE_PIVOTS` (the preprocessing phase puts them there).

    With a :class:`CheckpointStore`, a completed build is persisted
    keyed by a fingerprint of the records and every build parameter; a
    re-run of the same pipeline (e.g. after the downstream join job
    aborted) restores the merged index instead of re-running the job,
    counted under ``checkpoint.restores``.
    """
    partitioner: RangePartitioner = runtime.cluster.cached(CACHE_PIVOTS)
    fingerprint = None
    if checkpoints is not None:
        hasher: SimilarityHash = runtime.cluster.cached(CACHE_HASH)
        fingerprint = fingerprint_records(
            records,
            STAGE_INDEX_BUILD,
            window,
            max_depth,
            partitioner.num_partitions,
            partitioner.pivots,
            hasher.num_bits,
        )
        restored = checkpoints.restore(STAGE_INDEX_BUILD, fingerprint)
        if restored is not None:
            merged, sizes = restored
            stub_counters = Counters()
            stub_counters.add(CHECKPOINT_RESTORES)
            runtime.cluster.counters.merge(stub_counters)
            stub = JobResult(
                "ha-index-build@checkpoint", [], stub_counters
            )
            return GlobalIndexResult(
                index=merged,
                job=stub,
                partition_sizes=sizes,
                restored=True,
            )
    job = MapReduceJob(
        name="ha-index-build",
        mapper=_encode_partition_mapper,
        reducer=_make_build_reducer(window, max_depth),
        # Keys are partition ids already.
        partitioner=lambda key, n: key % n,
        num_reducers=partitioner.num_partitions,
    )
    result = runtime.run(job, records)
    locals_by_partition = dict(result.output)
    if not locals_by_partition:
        raise IndexStateError("build job produced no local indexes")
    local_indexes = list(locals_by_partition.values())
    merged = DynamicHAIndex.merge(local_indexes)
    sizes = [len(index) for index in local_indexes]
    if checkpoints is not None and fingerprint is not None:
        checkpoints.save(STAGE_INDEX_BUILD, fingerprint, (merged, sizes))
    return GlobalIndexResult(index=merged, job=result, partition_sizes=sizes)
