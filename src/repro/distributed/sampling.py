"""Reservoir sampling (Vitter, 1985) — the paper's preprocessing sampler.

"To learn the hash function, we utilize a random sample obtained from
both R and S using reservoir sampling [22]" (Section 5.1).  The reservoir
runs in one pass over an iterable of unknown length and keeps each item
with equal probability.
"""

from __future__ import annotations

import random
from typing import Iterable, TypeVar

from repro.core.errors import InvalidParameterError

T = TypeVar("T")


def reservoir_sample(
    items: Iterable[T], capacity: int, seed: int = 0
) -> list[T]:
    """A uniform random sample of ``capacity`` items from ``items``.

    Returns all items when there are fewer than ``capacity``.  The order
    of the returned sample is the reservoir's internal order, not the
    input order.
    """
    if capacity < 1:
        raise InvalidParameterError("capacity must be positive")
    rng = random.Random(seed)
    reservoir: list[T] = []
    for count, item in enumerate(items):
        if count < capacity:
            reservoir.append(item)
            continue
        slot = rng.randint(0, count)
        if slot < capacity:
            reservoir[slot] = item
    return reservoir
