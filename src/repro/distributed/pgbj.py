"""PGBJ: pivot-based exact parallel kNN join (Lu et al., VLDB 2012).

The exact comparator of Section 6.2.  PGBJ works in the *original*
d-dimensional space — which is why its shuffle cost carries the factor
``d`` the hashed approaches shed (Section 5.4):

1. sample pivot points and broadcast them;
2. a first MapReduce job assigns every tuple to its closest pivot's
   Voronoi cell and collects per-cell statistics (size, radius);
3. a second job shuffles each R tuple (full vector!) to its cell and
   replicates each S tuple to every cell whose region may hold one of its
   R tuples' k nearest neighbours, bounded by the cell radius plus a kNN
   distance estimate; each reducer then solves its cell exactly.

The kNN distance bound is estimated from the sample (the original system
derives it from distance summaries).  A generous ``bound_slack`` keeps
recall at 1.0 on the benchmark workloads; tests verify this against a
brute-force join.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.distributed.sampling import reservoir_sample
from repro.mapreduce.job import MapReduceJob, TaskContext
from repro.mapreduce.runtime import MapReduceRuntime

_CACHE_PIVOTS = "pgbj.pivots"
_CACHE_BOUNDS = "pgbj.bounds"
_CACHE_K = "pgbj.k"

Record = tuple[int, np.ndarray]
_R_TAG = 0
_S_TAG = 1


@dataclass
class PGBJReport:
    """kNN-join output and accounting."""

    neighbors: dict[int, list[tuple[int, float]]]
    preprocess_seconds: float = 0.0
    assign_seconds: float = 0.0
    join_seconds: float = 0.0
    shuffle_bytes: int = 0
    replication_factor: float = 1.0
    partition_sizes: list[int] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.preprocess_seconds + self.assign_seconds + self.join_seconds

    @property
    def data_shuffle_bytes(self) -> int:
        """PGBJ has no learned-hash broadcast; everything it shuffles is
        data-dependent (uniform interface with the other join reports)."""
        return self.shuffle_bytes


def _closest_pivot(vector: np.ndarray, pivots: np.ndarray) -> tuple[int, float]:
    distances = np.linalg.norm(pivots - vector, axis=1)
    cell = int(np.argmin(distances))
    return cell, float(distances[cell])


def _assign_mapper(key: Any, value: Any, context: TaskContext):
    pivots: np.ndarray = context.cached(_CACHE_PIVOTS)
    tag, tuple_id, vector = value
    cell, distance = _closest_pivot(np.asarray(vector), pivots)
    yield cell, (tag, tuple_id, distance)


def _stats_reducer(key: Any, values: list[Any], _: TaskContext):
    r_distances = [d for tag, _, d in values if tag == _R_TAG]
    yield key, (len(r_distances), max(r_distances, default=0.0))


def _join_mapper(key: Any, value: Any, context: TaskContext):
    pivots: np.ndarray = context.cached(_CACHE_PIVOTS)
    bounds: dict[int, float] = context.cached(_CACHE_BOUNDS)
    tag, tuple_id, vector = value
    point = np.asarray(vector)
    if tag == _R_TAG:
        cell, _ = _closest_pivot(point, pivots)
        yield cell, (tag, tuple_id, vector)
        return
    # Replicate the S tuple to every cell that may need it: the cell's
    # radius plus its kNN distance bound limits how far a useful
    # neighbour can sit from the pivot.
    distances = np.linalg.norm(pivots - point, axis=1)
    for cell, bound in bounds.items():
        if distances[cell] <= bound:
            yield cell, (tag, tuple_id, vector)


def _make_knn_reducer(k: int):
    def reducer(
        key: Any, values: list[Any], _: TaskContext
    ) -> Iterator[tuple[int, list[tuple[int, float]]]]:
        r_side = [(tid, np.asarray(v)) for tag, tid, v in values if tag == _R_TAG]
        s_side = [(tid, np.asarray(v)) for tag, tid, v in values if tag == _S_TAG]
        if not r_side or not s_side:
            return
        s_matrix = np.vstack([v for _, v in s_side])
        s_ids = [tid for tid, _ in s_side]
        for r_id, r_vector in r_side:
            distances = np.linalg.norm(s_matrix - r_vector, axis=1)
            order = np.argsort(distances, kind="stable")[:k]
            yield r_id, [
                (s_ids[i], float(distances[i])) for i in order
            ]

    return reducer


def pgbj_knn_join(
    runtime: MapReduceRuntime,
    left_records: list[Record],
    right_records: list[Record],
    k: int,
    num_pivots: int | None = None,
    sample_size: int = 500,
    bound_slack: float = 2.0,
    seed: int = 0,
) -> PGBJReport:
    """Exact-style kNN join of R (left) against S (right) on MapReduce.

    Returns, for each left id, its ``k`` nearest right tuples by
    Euclidean distance.  ``bound_slack`` scales the sampled kNN distance
    estimate used in the replication bound; larger values trade shuffle
    volume for recall.
    """
    if k < 1:
        raise InvalidParameterError("k must be positive")
    report = PGBJReport(neighbors={})
    cluster = runtime.cluster
    shuffle_before = cluster.counters.total_shuffle_bytes

    started = time.perf_counter()
    num_pivots = num_pivots or cluster.num_workers
    sampled = reservoir_sample(
        [vector for _, vector in left_records], sample_size, seed=seed
    )
    rng = np.random.default_rng(seed)
    sample_matrix = np.asarray(sampled, dtype=np.float64)
    chosen = rng.choice(
        sample_matrix.shape[0],
        size=min(num_pivots, sample_matrix.shape[0]),
        replace=False,
    )
    pivots = sample_matrix[chosen]
    knn_estimate = _sample_knn_distance(sample_matrix, k)
    cluster.broadcast(_CACHE_PIVOTS, pivots)
    report.preprocess_seconds = time.perf_counter() - started

    tagged = [
        (r_id, (_R_TAG, r_id, vector)) for r_id, vector in left_records
    ]
    tagged.extend(
        (s_id, (_S_TAG, s_id, vector)) for s_id, vector in right_records
    )

    assign_job = MapReduceJob(
        name="pgbj-assign",
        mapper=_assign_mapper,
        reducer=_stats_reducer,
        partitioner=lambda key, n: key % n,
        num_reducers=pivots.shape[0],
    )
    assign_result = runtime.run(assign_job, tagged)
    report.assign_seconds = assign_result.simulated_seconds
    radii = {cell: radius for cell, (_, radius) in assign_result.output}
    sizes = {cell: count for cell, (count, _) in assign_result.output}
    bounds = {
        cell: radius + bound_slack * knn_estimate
        for cell, radius in radii.items()
        if sizes.get(cell, 0) > 0
    }
    cluster.broadcast(_CACHE_BOUNDS, bounds)
    cluster.broadcast(_CACHE_K, k)

    join_job = MapReduceJob(
        name="pgbj-join",
        mapper=_join_mapper,
        reducer=_make_knn_reducer(k),
        partitioner=lambda key, n: key % n,
        num_reducers=pivots.shape[0],
    )
    join_result = runtime.run(join_job, tagged)
    report.join_seconds = join_result.simulated_seconds
    report.shuffle_bytes = (
        cluster.counters.total_shuffle_bytes - shuffle_before
    )
    shuffled_records = join_result.counters.get("shuffle.records")
    total_inputs = len(tagged)
    report.replication_factor = (
        shuffled_records / total_inputs if total_inputs else 1.0
    )
    report.partition_sizes = sorted(sizes.values())
    report.neighbors = dict(join_result.output)
    return report


def _sample_knn_distance(sample: np.ndarray, k: int) -> float:
    """Median k-th-NN distance within the sample (the bound estimate).

    A subsample is sparser than the full dataset, so its k-th-NN
    distances upper-bound the true ones in expectation; ``bound_slack``
    adds headroom on top.
    """
    n = sample.shape[0]
    if n <= k:
        diffs = sample[:, None, :] - sample[None, :, :]
        return float(np.linalg.norm(diffs, axis=2).max())
    kth = []
    probes = sample[: min(64, n)]
    for point in probes:
        distances = np.sort(np.linalg.norm(sample - point, axis=1))
        kth.append(distances[min(k, n - 1)])
    return float(np.median(kth))
