"""MapReduce Hamming-join: the paper's three-phase pipeline (Figure 5).

Phase 1 — *preprocessing*: reservoir-sample R and S, learn the similarity
hash on the sample, build the Gray-order histogram and select pivots for
balanced range partitioning; broadcast hash and pivots.

Phase 2 — *global HA-Index building*: one MapReduce job partitions R by
Gray range and H-Builds a local HA-Index per partition; the locals merge
into the global index (``repro.distributed.global_index``).

Phase 3 — *Hamming-join*: a second MapReduce job partitions S and joins
each partition against the broadcast index.

Two variants of phase 3 (Section 5.3):

* **Option A** — R is small: the global index keeps its leaf id tables
  and reducers emit (r id, s id) pairs directly.
* **Option B** — R is large: only the leaf-less index is broadcast
  (``DynamicHAIndex.strip_ids``); reducers emit qualifying *codes*, and a
  post-processing join (in-memory when R fits, MapReduce hash join
  otherwise) recovers the tuple ids.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.errors import InvalidParameterError
from repro.distributed.global_index import (
    CACHE_GLOBAL_INDEX,
    CACHE_HASH,
    CACHE_PIVOTS,
    build_global_index,
)
from repro.distributed.pivots import partition_of, select_pivots
from repro.distributed.sampling import reservoir_sample
from repro.hashing.base import SimilarityHash
from repro.hashing.spectral import SpectralHash
from repro.mapreduce.checkpoint import (
    STAGE_PREPROCESS,
    CheckpointStore,
    fingerprint_records,
)
from repro.mapreduce.counters import CHECKPOINT_RESTORES
from repro.mapreduce.hashjoin import mapreduce_hash_join
from repro.mapreduce.job import MapReduceJob, TaskContext
from repro.mapreduce.partitioner import RangePartitioner
from repro.mapreduce.runtime import MapReduceRuntime
from repro.obs.trace import trace_span

#: Tuple-count limit for the in-memory id-recovery join of Option B.
DEFAULT_IN_MEMORY_LIMIT = 100_000
#: R size beyond which option "auto" switches from A to B.
DEFAULT_OPTION_B_CUTOFF = 50_000
DEFAULT_SAMPLE_SIZE = 1_000

Record = tuple[int, np.ndarray]


@dataclass
class HammingJoinReport:
    """Result pairs plus the per-phase accounting the benches read."""

    pairs: list[tuple[int, int]]
    option: str
    sample_seconds: float = 0.0
    learn_hash_seconds: float = 0.0
    pivot_seconds: float = 0.0
    build_seconds: float = 0.0
    join_seconds: float = 0.0
    postprocess_seconds: float = 0.0
    broadcast_seconds: float = 0.0
    build_shuffle_bytes: int = 0
    join_shuffle_bytes: int = 0
    broadcast_bytes: int = 0
    index_broadcast_bytes: int = 0
    partition_sizes: list[int] = field(default_factory=list)
    build_restored: bool = False

    @property
    def preprocess_seconds(self) -> float:
        return (
            self.sample_seconds
            + self.learn_hash_seconds
            + self.pivot_seconds
        )

    @property
    def total_seconds(self) -> float:
        """End-to-end modelled time of the pipeline.

        Broadcast transfer time is folded into the job that follows each
        broadcast (``JobResult.broadcast_transfer_seconds``), i.e. it is
        already inside ``build_seconds``/``join_seconds``;
        ``broadcast_seconds`` only breaks that component out.
        """
        return (
            self.preprocess_seconds
            + self.build_seconds
            + self.join_seconds
            + self.postprocess_seconds
        )

    @property
    def shuffle_bytes(self) -> int:
        """Total shuffled + broadcast bytes of the whole pipeline."""
        return (
            self.build_shuffle_bytes
            + self.join_shuffle_bytes
            + self.broadcast_bytes
        )

    @property
    def data_shuffle_bytes(self) -> int:
        """Data-dependent shuffle: record shuffles plus the index
        broadcast, excluding the hash/pivot broadcast that every
        approach pays identically (the Figure 7 metric)."""
        return (
            self.build_shuffle_bytes
            + self.join_shuffle_bytes
            + self.index_broadcast_bytes
        )


def preprocess(
    runtime: MapReduceRuntime,
    left_records: list[Record],
    right_records: list[Record],
    num_bits: int = 32,
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    seed: int = 0,
    report: HammingJoinReport | None = None,
    checkpoints: CheckpointStore | None = None,
) -> tuple[SimilarityHash, RangePartitioner]:
    """Phase 1: sample, learn the hash, pick pivots, broadcast both.

    With a :class:`CheckpointStore`, the learned hash and partitioner
    are persisted keyed by a fingerprint of both record sets and every
    preprocessing parameter; a pipeline re-run after a mid-chain abort
    restores them instead of re-sampling and re-learning.
    """
    fingerprint = None
    if checkpoints is not None:
        fingerprint = fingerprint_records(
            left_records,
            STAGE_PREPROCESS,
            num_bits,
            sample_size,
            seed,
            runtime.cluster.num_workers,
            fingerprint_records(right_records, "right"),
        )
        restored = checkpoints.restore(STAGE_PREPROCESS, fingerprint)
        if restored is not None:
            hasher, partitioner = restored
            runtime.cluster.counters.add(CHECKPOINT_RESTORES)
            runtime.cluster.broadcast(CACHE_HASH, hasher)
            runtime.cluster.broadcast(CACHE_PIVOTS, partitioner)
            return hasher, partitioner

    started = time.perf_counter()
    vectors = [vector for _, vector in left_records]
    vectors.extend(vector for _, vector in right_records)
    sample = reservoir_sample(vectors, sample_size, seed=seed)
    sampled = np.asarray(sample, dtype=np.float64)
    sample_done = time.perf_counter()

    hasher = SpectralHash(num_bits)
    sample_codes = hasher.fit_encode(sampled)
    learn_done = time.perf_counter()

    pivots = select_pivots(
        sample_codes.codes, runtime.cluster.num_workers
    )
    partitioner = RangePartitioner(pivots)
    runtime.cluster.broadcast(CACHE_HASH, hasher)
    runtime.cluster.broadcast(CACHE_PIVOTS, partitioner)
    pivot_done = time.perf_counter()

    if report is not None:
        report.sample_seconds = sample_done - started
        report.learn_hash_seconds = learn_done - sample_done
        report.pivot_seconds = pivot_done - learn_done
    if checkpoints is not None and fingerprint is not None:
        checkpoints.save(STAGE_PREPROCESS, fingerprint, (hasher, partitioner))
    return hasher, partitioner


def _make_probe_mapper():
    def mapper(
        key: Any, value: Any, context: TaskContext
    ) -> Iterator[tuple[int, tuple[int, int]]]:
        """(s id, vector) -> (partition, (s code, s id))."""
        hasher: SimilarityHash = context.cached(CACHE_HASH)
        partitioner: RangePartitioner = context.cached(CACHE_PIVOTS)
        code = hasher.encode(np.asarray(value)).codes[0]
        yield partition_of(code, partitioner), (code, key)

    return mapper


def _join_reducer_option_a(
    key: Any, values: list[Any], context: TaskContext
) -> Iterator[tuple[int, int]]:
    index: DynamicHAIndex = context.cached(CACHE_GLOBAL_INDEX)
    threshold: int = context.cached("hamming.threshold")
    search_batch = getattr(index, "search_batch", None)
    if search_batch is not None:
        # One vectorized frontier sweep over the whole probe partition
        # instead of a node walk per probe code.
        id_lists = search_batch([code for code, _ in values], threshold)
        for (_, s_id), r_ids in zip(values, id_lists):
            for r_id in r_ids:
                yield r_id, s_id
        return
    for code, s_id in values:
        for r_id in index.search(code, threshold):
            yield r_id, s_id


def _join_reducer_option_b(
    key: Any, values: list[Any], context: TaskContext
) -> Iterator[tuple[int, int]]:
    index: DynamicHAIndex = context.cached(CACHE_GLOBAL_INDEX)
    threshold: int = context.cached("hamming.threshold")
    search_codes_batch = getattr(index, "search_codes_batch", None)
    if search_codes_batch is not None:
        code_lists = search_codes_batch(
            [code for code, _ in values], threshold
        )
        for (_, s_id), r_codes in zip(values, code_lists):
            for r_code in r_codes:
                yield r_code, s_id
        return
    for code, s_id in values:
        for r_code in index.search_codes(code, threshold):
            yield r_code, s_id


def mapreduce_hamming_join(
    runtime: MapReduceRuntime,
    left_records: list[Record],
    right_records: list[Record],
    threshold: int,
    num_bits: int = 32,
    option: str = "auto",
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    window: int = 8,
    max_depth: int = 6,
    in_memory_limit: int = DEFAULT_IN_MEMORY_LIMIT,
    exclude_self_pairs: bool = False,
    seed: int = 0,
    checkpoints: CheckpointStore | None = None,
) -> HammingJoinReport:
    """Full distributed ``h-join(R, S)``; returns pairs and accounting.

    ``left_records`` is R (indexed side), ``right_records`` is S (probe
    side).  ``option`` is ``"A"``, ``"B"`` or ``"auto"``.  With
    ``exclude_self_pairs=True`` (self-joins), pairs are deduplicated to
    ``r id < s id``.

    Passing a :class:`CheckpointStore` makes the chain recoverable: the
    preprocessing output and the merged index-build output are persisted
    as each completes, so if a later job aborts (e.g. under injected
    faults), re-invoking this function with the same store resumes from
    the last completed stage — the join job restarts from the persisted
    index instead of re-running job 1.
    """
    if option not in ("A", "B", "auto"):
        raise InvalidParameterError(f"unknown join option {option!r}")
    if option == "auto":
        option = "B" if len(left_records) > DEFAULT_OPTION_B_CUTOFF else "A"

    report = HammingJoinReport(pairs=[], option=option)
    cluster = runtime.cluster
    broadcast_before = cluster.counters.get("broadcast.bytes")

    with trace_span(
        "dist_join", option=option, threshold=threshold
    ) as join_span:
        with trace_span("dist_join.preprocess") as span:
            preprocess(
                runtime,
                left_records,
                right_records,
                num_bits=num_bits,
                sample_size=sample_size,
                seed=seed,
                report=report,
                checkpoints=checkpoints,
            )
            span.annotate(seconds_breakdown=report.preprocess_seconds)

        with trace_span("dist_join.build") as span:
            build_started = time.perf_counter()
            build = build_global_index(
                runtime,
                left_records,
                window=window,
                max_depth=max_depth,
                checkpoints=checkpoints,
            )
            merge_seconds = time.perf_counter() - build_started
            merge_seconds -= sum(build.job.map_task_seconds)
            merge_seconds -= sum(build.job.reduce_task_seconds)
            report.build_seconds = build.job.simulated_seconds + max(
                merge_seconds, 0.0
            )
            report.build_shuffle_bytes = build.job.counters.get(
                "shuffle.bytes"
            )
            report.partition_sizes = build.partition_sizes
            report.build_restored = build.restored
            span.annotate(
                simulated_seconds=report.build_seconds,
                shuffle_bytes=report.build_shuffle_bytes,
            )

        global_index = build.index
        index_broadcast_before = cluster.counters.get("broadcast.bytes")
        if option == "A":
            cluster.broadcast(CACHE_GLOBAL_INDEX, global_index)
            reducer = _join_reducer_option_a
        else:
            cluster.broadcast(
                CACHE_GLOBAL_INDEX, global_index.strip_ids()
            )
            reducer = _join_reducer_option_b
        report.index_broadcast_bytes = (
            cluster.counters.get("broadcast.bytes")
            - index_broadcast_before
        )
        cluster.broadcast("hamming.threshold", threshold)

        join_job = MapReduceJob(
            name=f"hamming-join-{option}",
            mapper=_make_probe_mapper(),
            reducer=reducer,
            partitioner=lambda key, n: key % n,
            num_reducers=cluster.num_workers,
        )
        with trace_span("dist_join.join") as span:
            join_result = runtime.run(join_job, right_records)
            report.join_seconds = join_result.simulated_seconds
            report.join_shuffle_bytes = join_result.counters.get(
                "shuffle.bytes"
            )
            span.annotate(
                simulated_seconds=report.join_seconds,
                shuffle_bytes=report.join_shuffle_bytes,
            )

        with trace_span("dist_join.postprocess"):
            if option == "A":
                pairs = list(join_result.output)
            else:
                pairs = _recover_ids(
                    runtime, global_index, join_result.output,
                    in_memory_limit, report,
                )
            if exclude_self_pairs:
                pairs = sorted({(a, b) for a, b in pairs if a < b})
        report.pairs = pairs
        report.broadcast_bytes = (
            cluster.counters.get("broadcast.bytes") - broadcast_before
        )
        # Informational breakout: broadcast transfer is already folded
        # into the simulated time of the job following each broadcast.
        report.broadcast_seconds = (
            build.job.broadcast_transfer_seconds
            + join_result.broadcast_transfer_seconds
        )
        join_span.annotate(
            pairs=len(report.pairs),
            simulated_seconds=report.total_seconds,
        )
    return report


def _recover_ids(
    runtime: MapReduceRuntime,
    global_index: DynamicHAIndex,
    qualifying: list[tuple[int, int]],
    in_memory_limit: int,
    report: HammingJoinReport,
) -> list[tuple[int, int]]:
    """Option B post-processing: (r code, s id) -> (r id, s id)."""
    started = time.perf_counter()
    if len(global_index) <= in_memory_limit:
        pairs = []
        for r_code, s_id in qualifying:
            for r_id in global_index.ids_for_code(r_code):
                pairs.append((r_id, s_id))
        report.postprocess_seconds = time.perf_counter() - started
        return pairs
    left = [
        (code, r_id)
        for code, r_id in global_index.code_id_pairs()
    ]
    join = mapreduce_hash_join(
        runtime, left, qualifying, name="option-b-id-recovery"
    )
    report.postprocess_seconds = time.perf_counter() - started
    report.join_shuffle_bytes += join.counters.get("shuffle.bytes")
    return [(r_id, s_id) for _, (r_id, s_id) in join.output]
