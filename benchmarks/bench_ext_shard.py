"""Extension bench: sharded scatter-gather serving with Gray-range pruning.

Three services answer the same pipelined select sweep over a clustered
workload (the layout the Gray-range bound exploits; docs/sharding.md):

* the single-index :class:`HammingQueryService` baseline,
* the :class:`ShardedQueryService` with ``pruning=False`` — every query
  broadcast to all shards, the scatter-gather floor,
* the :class:`ShardedQueryService` with the planner on.

All three must return identical result sets — the sweep asserts that
before any number is recorded.  The headline metric is the *pruning
ratio* (shard visits avoided): in a distributed deployment each visit
is a network RPC, so visits avoided — not local CPU — is the paper's
cost model for the scatter side.  Latency speedups versus both the
broadcast floor and the single-index baseline are recorded alongside,
in ``benchmarks/results/BENCH_shard.json``.
"""

from __future__ import annotations

import time

import pytest

from repro.core.dynamic_ha import DynamicHAIndex
from repro.data.workloads import cluster_codes
from repro.service import HammingQueryService, ShardedQueryService

from benchmarks.harness import (
    paper_codes,
    record,
    record_json,
    render_table,
    sample_queries,
    scale,
    scaled,
)

WORKLOAD_SIZE = 12_000
NUM_QUERIES = 400
THRESHOLD = 3
NUM_SHARDS = 4
NUM_CLUSTERS = 4
MAX_BATCH = 64
REPEATS = 5


@pytest.fixture(scope="module")
def shard_workload():
    codes = cluster_codes(
        paper_codes("NUS-WIDE", scaled(WORKLOAD_SIZE)), NUM_CLUSTERS
    )
    queries = sample_queries(codes, NUM_QUERIES, seed=7)
    return codes, queries


def _sweep_seconds(service, queries) -> tuple[float, list]:
    """One pipelined select sweep: submit everything, gather tickets."""
    started = time.perf_counter()
    tickets = [
        service.submit("select", query, THRESHOLD) for query in queries
    ]
    results = [ticket.result().value for ticket in tickets]
    return time.perf_counter() - started, results


def _best_sweep(service, queries) -> tuple[float, list]:
    """Best-of-``REPEATS`` steady-state sweep (kernels stay warm)."""
    _, results = _sweep_seconds(service, queries)  # warm-up
    best = float("inf")
    for _ in range(REPEATS):
        elapsed, sweep_results = _sweep_seconds(service, queries)
        assert sweep_results == results
        best = min(best, elapsed)
    return best, results


def test_shard_pruning_speedup(benchmark, shard_workload):
    """Acceptance: identical results, non-vacuous pruning, and a
    latency win over the broadcast floor on the clustered workload."""
    codes, queries = shard_workload
    limit = len(queries) + 8
    common = dict(
        workers=1,
        max_batch=MAX_BATCH,
        cache_capacity=0,
        queue_limit=limit,
    )

    def run():
        measured = {}
        single = HammingQueryService(DynamicHAIndex.build(codes), **common)
        with single:
            seconds, results = _best_sweep(single, queries)
        measured["single"] = {
            "seconds": seconds,
            "results": [tuple(sorted(ids)) for ids in results],
        }
        for label, pruning in (("broadcast", False), ("pruned", True)):
            service = ShardedQueryService(
                codes,
                num_shards=NUM_SHARDS,
                pruning=pruning,
                **common,
            )
            with service:
                seconds, results = _best_sweep(service, queries)
                stats = service.shard_stats()
            measured[label] = {
                "seconds": seconds,
                "results": [tuple(sorted(ids)) for ids in results],
                "pruning_ratio": stats.pruning_ratio,
                "mean_contacted": stats.mean_contacted,
                "broadcasts": stats.broadcasts,
            }
        return measured

    measured = benchmark.pedantic(run, rounds=1, iterations=1)

    assert (
        measured["single"]["results"]
        == measured["broadcast"]["results"]
        == measured["pruned"]["results"]
    ), "scatter-gather must be byte-identical to the single index"

    pruned = measured["pruned"]
    broadcast = measured["broadcast"]
    single = measured["single"]
    speedup_vs_broadcast = broadcast["seconds"] / pruned["seconds"]
    speedup_vs_single = single["seconds"] / pruned["seconds"]

    per_query = {
        label: cell["seconds"] / len(queries) * 1000.0
        for label, cell in measured.items()
    }
    rows = [
        ["single", f"{per_query['single']:.3f}", "-", "-"],
        [
            "broadcast",
            f"{per_query['broadcast']:.3f}",
            f"{broadcast['mean_contacted']:.2f}",
            "0.0%",
        ],
        [
            "pruned",
            f"{per_query['pruned']:.3f}",
            f"{pruned['mean_contacted']:.2f}",
            f"{pruned['pruning_ratio'] * 100:.1f}%",
        ],
    ]
    table = render_table(
        f"Extension: Gray-range shard pruning "
        f"(NUS-WIDE-like, {NUM_CLUSTERS} clusters, h={THRESHOLD}, "
        f"{NUM_SHARDS} shards, {len(queries)} queries, "
        f"best of {REPEATS})",
        ["service", "ms/query", "shards/query", "visits avoided"],
        rows,
        note=(
            f"Pruned sweep: {speedup_vs_broadcast:.2f}x vs the "
            f"broadcast floor, {speedup_vs_single:.2f}x vs the "
            "single index.  Visits avoided are remote-shard RPCs "
            "saved in a distributed deployment — the paper's "
            "scatter-side cost model."
        ),
    )
    record("ext_shard_pruning", table)
    record_json(
        "BENCH_shard",
        {
            "workload": "NUS-WIDE-like",
            "clusters": NUM_CLUSTERS,
            "threshold": THRESHOLD,
            "num_shards": NUM_SHARDS,
            "num_queries": len(queries),
            "max_batch": MAX_BATCH,
            "scale": scale(),
            "latency_ms_per_query": per_query,
            "pruning_ratio": pruned["pruning_ratio"],
            "mean_shards_contacted": pruned["mean_contacted"],
            "broadcast_queries": pruned["broadcasts"],
            "speedup_vs_broadcast": speedup_vs_broadcast,
            "speedup_vs_single": speedup_vs_single,
        },
    )
    # The bound must bite on a clustered layout: every query should
    # resolve against a strict subset of the shards.
    assert pruned["pruning_ratio"] > 0.0
    assert pruned["mean_contacted"] < broadcast["mean_contacted"]
