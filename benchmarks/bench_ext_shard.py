"""Extension bench: sharded scatter-gather serving at million-code scale.

Two experiments over clustered NUS-WIDE-like codes, both recorded into
``benchmarks/results/BENCH_shard.json``:

* ``test_shard_pruning_speedup`` — the original small cell (n=12 000,
  4 shards, h=3): single index vs broadcast floor vs pruned scatter.
  Kept unchanged so the metric trajectory across PRs stays comparable.
* ``test_shard_scaling_crossover`` — the scale story (n=1M, 8 shards,
  8 pool workers): a threshold sweep locating the crossover where
  scatter-gather beats the single index.

Every cell asserts byte-identical results against the single index
before any number is recorded.

Methodology for the big cells (the honest part): this box may have
fewer cores than the pool has workers, so a *measured* wall clock
cannot show an 8-way win no matter how good the scatter layer is.  The
bench therefore follows the same device as the Figure 9 MapReduce
benches ("modelled cluster time", ``repro.mapreduce.runtime``): run the
scatter with the serial executor so every shard task's seconds are
measured inline and unpolluted by scheduling, then schedule those real
task seconds on an 8-worker pool (``modelled_wall``) and add the
measured coordinator time (plan + dispatch + gather merge) that does
not parallelize:

    modelled_s = (measured_wall - task_busy) + schedule(task_seconds, 8)

``speedup_vs_single`` is ``single_wall / modelled_s``.  The measured
single-host wall is recorded alongside in every cell, as is one real
``pool="thread"`` run at 8 workers, so nothing is hidden: on a
many-core host the measured number converges to the modelled one; on
this host it shows what one core does.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.core.dynamic_ha import DynamicHAIndex
from repro.data.workloads import cluster_codes, near_miss_queries
from repro.service import HammingQueryService, ShardedQueryService

from benchmarks.harness import (
    RESULTS_DIR,
    paper_codes,
    record,
    render_table,
    sample_queries,
    scale,
    scaled,
)

WORKLOAD_SIZE = 12_000
NUM_QUERIES = 400
THRESHOLD = 3
NUM_SHARDS = 4
NUM_CLUSTERS = 4
MAX_BATCH = 64
REPEATS = 5

#: The scale story: 8 shards / 8 pool workers over ~1M codes, sweeping
#: the threshold to locate the crossover.  Near-miss queries (member
#: codes with 4 bits flipped — near-duplicate probes at the edge of
#: the match radius) are the workload the paper targets: selective
#: answers, traversal-dominated cost.
CROSSOVER_SIZE = 1_000_000
CROSSOVER_SHARDS = 8
CROSSOVER_CLUSTERS = 8
CROSSOVER_WORKERS = 8
CROSSOVER_FLIPS = 4
CROSSOVER_THRESHOLDS = (3, 5, 7)
CROSSOVER_REPEATS = 3


def _merge_record_json(section: str, payload: dict) -> None:
    """Fold one experiment's payload into ``BENCH_shard.json``.

    Two tests share the file, so each rewrites only its own section
    (plus any top-level keys it owns) instead of clobbering the other.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "BENCH_shard.json"
    merged = {}
    if path.exists():
        try:
            merged = json.loads(path.read_text())
        except ValueError:
            merged = {}
    # Drop anything that is not a known section (e.g. the flat layout
    # this file used before it grew the crossover experiment).
    merged = {key: merged[key] for key in ("small", "crossover") if key in merged}
    merged[section] = payload
    path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def shard_workload():
    codes = cluster_codes(
        paper_codes("NUS-WIDE", scaled(WORKLOAD_SIZE)), NUM_CLUSTERS
    )
    queries = sample_queries(codes, NUM_QUERIES, seed=7)
    return codes, queries


def _sweep_seconds(service, queries, threshold=THRESHOLD):
    """One pipelined select sweep: submit everything, gather tickets."""
    started = time.perf_counter()
    tickets = [
        service.submit("select", query, threshold) for query in queries
    ]
    results = [ticket.result().value for ticket in tickets]
    return time.perf_counter() - started, results


def _best_sweep(service, queries, threshold=THRESHOLD, repeats=REPEATS):
    """Best-of-``repeats`` steady-state sweep (kernels stay warm)."""
    _, results = _sweep_seconds(service, queries, threshold)  # warm-up
    best = float("inf")
    for _ in range(repeats):
        elapsed, sweep_results = _sweep_seconds(
            service, queries, threshold
        )
        assert sweep_results == results
        best = min(best, elapsed)
    return best, results


def _canonical(results) -> list:
    return [tuple(sorted(ids)) for ids in results]


def test_shard_pruning_speedup(benchmark, shard_workload):
    """Acceptance: identical results, non-vacuous pruning, and a
    latency win over the broadcast floor on the clustered workload."""
    codes, queries = shard_workload
    limit = len(queries) + 8
    common = dict(
        workers=1,
        max_batch=MAX_BATCH,
        cache_capacity=0,
        queue_limit=limit,
    )

    def run():
        measured = {}
        single = HammingQueryService(DynamicHAIndex.build(codes), **common)
        with single:
            seconds, results = _best_sweep(single, queries)
        measured["single"] = {
            "seconds": seconds,
            "results": _canonical(results),
        }
        for label, pruning in (("broadcast", False), ("pruned", True)):
            service = ShardedQueryService(
                codes,
                num_shards=NUM_SHARDS,
                pruning=pruning,
                **common,
            )
            with service:
                seconds, results = _best_sweep(service, queries)
                stats = service.shard_stats()
            measured[label] = {
                "seconds": seconds,
                "results": _canonical(results),
                "pruning_ratio": stats.pruning_ratio,
                "mean_contacted": stats.mean_contacted,
                "broadcasts": stats.broadcasts,
            }
        return measured

    measured = benchmark.pedantic(run, rounds=1, iterations=1)

    assert (
        measured["single"]["results"]
        == measured["broadcast"]["results"]
        == measured["pruned"]["results"]
    ), "scatter-gather must be byte-identical to the single index"

    pruned = measured["pruned"]
    broadcast = measured["broadcast"]
    single = measured["single"]
    speedup_vs_broadcast = broadcast["seconds"] / pruned["seconds"]
    speedup_vs_single = single["seconds"] / pruned["seconds"]

    per_query = {
        label: cell["seconds"] / len(queries) * 1000.0
        for label, cell in measured.items()
    }
    rows = [
        ["single", f"{per_query['single']:.3f}", "-", "-"],
        [
            "broadcast",
            f"{per_query['broadcast']:.3f}",
            f"{broadcast['mean_contacted']:.2f}",
            "0.0%",
        ],
        [
            "pruned",
            f"{per_query['pruned']:.3f}",
            f"{pruned['mean_contacted']:.2f}",
            f"{pruned['pruning_ratio'] * 100:.1f}%",
        ],
    ]
    table = render_table(
        f"Extension: Gray-range shard pruning "
        f"(NUS-WIDE-like, {NUM_CLUSTERS} clusters, h={THRESHOLD}, "
        f"{NUM_SHARDS} shards, {len(queries)} queries, "
        f"best of {REPEATS})",
        ["service", "ms/query", "shards/query", "visits avoided"],
        rows,
        note=(
            f"Pruned sweep: {speedup_vs_broadcast:.2f}x vs the "
            f"broadcast floor, {speedup_vs_single:.2f}x vs the "
            "single index.  Visits avoided are remote-shard RPCs "
            "saved in a distributed deployment — the paper's "
            "scatter-side cost model."
        ),
    )
    record("ext_shard_pruning", table)
    _merge_record_json(
        "small",
        {
            "workload": "NUS-WIDE-like",
            "n": len(codes),
            "clusters": NUM_CLUSTERS,
            "threshold": THRESHOLD,
            "num_shards": NUM_SHARDS,
            "num_queries": len(queries),
            "max_batch": MAX_BATCH,
            "scale": scale(),
            "latency_ms_per_query": per_query,
            "pruning_ratio": pruned["pruning_ratio"],
            "mean_shards_contacted": pruned["mean_contacted"],
            "broadcast_queries": pruned["broadcasts"],
            "speedup_vs_broadcast": speedup_vs_broadcast,
            "speedup_vs_single": speedup_vs_single,
        },
    )
    # The bound must bite on a clustered layout: every query should
    # resolve against a strict subset of the shards.
    assert pruned["pruning_ratio"] > 0.0
    assert pruned["mean_contacted"] < broadcast["mean_contacted"]


def _pool_seconds_delta(service, before):
    after = service.shard_stats()
    return (
        after.pool_busy_seconds - before.pool_busy_seconds,
        after.pool_critical_seconds - before.pool_critical_seconds,
    )


def test_shard_scaling_crossover(benchmark):
    """Acceptance: at 8 shards / 8 workers over >= 1M codes the best
    threshold cell clears ``speedup_vs_single >= 2.5`` (modelled), with
    every cell byte-identical to the single index."""
    n = scaled(CROSSOVER_SIZE)
    codes = cluster_codes(
        paper_codes("NUS-WIDE", n), CROSSOVER_CLUSTERS
    )
    queries = near_miss_queries(
        codes, NUM_QUERIES, flips=CROSSOVER_FLIPS, seed=7
    )
    limit = len(queries) + 8
    common = dict(
        workers=1,
        max_batch=MAX_BATCH,
        cache_capacity=0,
        queue_limit=limit,
    )

    def run():
        cells = []
        single = HammingQueryService(
            DynamicHAIndex.build(codes), **common
        )
        sharded = ShardedQueryService(
            codes, num_shards=CROSSOVER_SHARDS, **common
        )
        with single, sharded:
            for threshold in CROSSOVER_THRESHOLDS:
                single_s, expected = _best_sweep(
                    single, queries, threshold, CROSSOVER_REPEATS
                )
                expected = _canonical(expected)

                # Serial executor, modelled at the target width: every
                # task's seconds measured inline, scheduled at 8.
                sharded.set_pool(
                    "serial", model_width=CROSSOVER_WORKERS
                )
                _, results = _sweep_seconds(sharded, queries, threshold)
                assert _canonical(results) == expected
                serial_wall = modelled = float("inf")
                busy = critical = 0.0
                for _ in range(CROSSOVER_REPEATS):
                    before = sharded.shard_stats()
                    wall, results = _sweep_seconds(
                        sharded, queries, threshold
                    )
                    sweep_busy, sweep_critical = _pool_seconds_delta(
                        sharded, before
                    )
                    sweep_modelled = max(
                        sweep_critical,
                        wall - sweep_busy + sweep_critical,
                    )
                    serial_wall = min(serial_wall, wall)
                    if sweep_modelled < modelled:
                        modelled = sweep_modelled
                        busy, critical = sweep_busy, sweep_critical

                # One real thread-pool run at the same width — the
                # honest measured number for however many cores this
                # host actually has.
                sharded.set_pool(
                    "thread", pool_workers=CROSSOVER_WORKERS
                )
                thread_wall, results = _best_sweep(
                    sharded, queries, threshold, CROSSOVER_REPEATS
                )
                assert _canonical(results) == expected

                stats = sharded.shard_stats()
                cells.append(
                    {
                        "n": n,
                        "shards": CROSSOVER_SHARDS,
                        "clusters": CROSSOVER_CLUSTERS,
                        "workers": CROSSOVER_WORKERS,
                        "threshold": threshold,
                        "num_queries": len(queries),
                        "single_s": single_s,
                        "serial_s": serial_wall,
                        "thread_s": thread_wall,
                        "task_busy_s": busy,
                        "task_schedule_s": critical,
                        "modelled_s": modelled,
                        "measured_speedup_serial": single_s / serial_wall,
                        "measured_speedup_thread": single_s / thread_wall,
                        "speedup_vs_single": single_s / modelled,
                        "mean_contacted": stats.mean_contacted,
                    }
                )
        return cells

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    headline = max(cells, key=lambda cell: cell["speedup_vs_single"])

    rows = [
        [
            f"{cell['threshold']}",
            f"{cell['single_s']:.2f}",
            f"{cell['serial_s']:.2f}",
            f"{cell['thread_s']:.2f}",
            f"{cell['modelled_s']:.2f}",
            f"{cell['speedup_vs_single']:.2f}x",
            f"{cell['mean_contacted']:.1f}",
        ]
        for cell in cells
    ]
    table = render_table(
        f"Extension: scatter-gather crossover "
        f"(NUS-WIDE-like, n={cells[0]['n']}, {CROSSOVER_SHARDS} shards, "
        f"{CROSSOVER_WORKERS} workers, {NUM_QUERIES} near-miss "
        f"queries at {CROSSOVER_FLIPS} flips)",
        [
            "h",
            "single s",
            "shard serial s",
            "shard thread s",
            "modelled s",
            "speedup",
            "shards/query",
        ],
        rows,
        note=(
            "modelled s = coordinator seconds + the 8-worker schedule "
            "of the measured per-task seconds (the Figure 9 modelled-"
            "cluster-time device); single-host measured walls recorded "
            "alongside.  Sharding pays off once traversal work "
            "dominates the scatter coordination."
        ),
    )
    record("ext_shard_crossover", table)
    _merge_record_json(
        "crossover",
        {
            "workload": (
                f"NUS-WIDE-like, near-miss queries "
                f"({CROSSOVER_FLIPS} flips)"
            ),
            "scale": scale(),
            "max_batch": MAX_BATCH,
            "methodology": (
                "modelled_s = (measured_wall - task_busy_s) + "
                "task_schedule_s, where task_schedule_s places the "
                "serial executor's measured per-task seconds on "
                f"{CROSSOVER_WORKERS} workers (earliest-free, "
                "submission order) — repro.service.executor."
                "modelled_wall, same construction as the Figure 9 "
                "modelled cluster time.  speedup_vs_single = "
                "single_s / modelled_s; measured single-host walls "
                "(serial_s, thread_s) recorded unadjusted."
            ),
            "cells": cells,
            "headline": headline,
            "speedup_vs_single": headline["speedup_vs_single"],
        },
    )

    assert headline["shards"] == CROSSOVER_SHARDS
    assert headline["workers"] == CROSSOVER_WORKERS
    if scale() >= 1.0:
        assert headline["n"] >= 1_000_000
        assert headline["speedup_vs_single"] >= 2.5, headline
