"""Figure 8: DHA-Index parameters — window length and index depth.

Regenerates Figure 8 (a) index building time and (b) query processing
time for window lengths 0.005n..0.04n and depths 4..7 (the paper's
sweep), on the NUS-WIDE-like workload.  Doubles as the parameter
ablation called out in DESIGN.md: H-Search stays exact for every cell
(leaf verification), so the sweep moves only the constants.

Expected shape: build time grows with window size and depth; query time
varies by well under 2x across the whole grid ("the HA-Index is not
sensitive to these parameters").
"""

from __future__ import annotations

import pytest

from repro.core.dynamic_ha import DynamicHAIndex

from benchmarks.harness import (
    paper_codes,
    record,
    render_table,
    sample_queries,
    scaled,
    time_call,
    time_queries,
)

#: Window lengths normalized by n, as in the paper's x-axis.
WINDOW_FRACTIONS = [0.005, 0.01, 0.015, 0.02, 0.025, 0.03, 0.035, 0.04]
DEPTHS = [4, 5, 6, 7]
WORKLOAD_SIZE = 20_000


@pytest.fixture(scope="module")
def workload():
    codes = paper_codes("NUS-WIDE", scaled(WORKLOAD_SIZE))
    return codes, sample_queries(codes, 10)


@pytest.mark.parametrize("depth", [4, 7])
def test_build_time(benchmark, depth, workload):
    """Microbenchmark of H-Build at the sweep's depth extremes."""
    codes, _ = workload
    window = max(2, int(0.02 * len(codes)))
    benchmark.pedantic(
        lambda: DynamicHAIndex.build(
            codes, window=window, max_depth=depth
        ),
        rounds=3,
        iterations=1,
    )


def test_fig8_report(benchmark, workload):
    def run() -> tuple[str, str]:
        codes, queries = workload
        build_rows = []
        query_rows = []
        for fraction in WINDOW_FRACTIONS:
            window = max(2, int(fraction * len(codes)))
            build_row: list[object] = [fraction]
            query_row: list[object] = [fraction]
            for depth in DEPTHS:
                build_seconds, index = time_call(
                    lambda w=window, d=depth: DynamicHAIndex.build(
                        codes, window=w, max_depth=d
                    )
                )
                build_row.append(build_seconds * 1000.0)
                query_row.append(time_queries(index, queries, 3))
            build_rows.append(build_row)
            query_rows.append(query_row)
        headers = ["window/n"] + [f"depth={d}" for d in DEPTHS]
        build_table = render_table(
            f"Figure 8a (NUS-WIDE-like, n={len(codes)}): "
            "DHA build time (ms) vs. window length",
            headers,
            build_rows,
        )
        query_table = render_table(
            f"Figure 8b (NUS-WIDE-like, n={len(codes)}): "
            "DHA query time (ms) vs. window length",
            headers,
            query_rows,
            note=(
                "Expected shape: build time grows with window and depth; "
                "query time stays within a narrow band (parameter-"
                "insensitive)."
            ),
        )
        return build_table, query_table

    build_table, query_table = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    record("fig8a_build", build_table)
    record("fig8b_query", query_table)
