"""Extension bench: weighted Hamming — re-rank vs native crossover.

The weighted engine answers one query through two plans.  **Re-rank**
sweeps the unweighted flat kernel at the radius the weight floor
implies (``floor(t / min(w))``) and re-scores candidates exactly;
cheap when weights are near-uniform, because the implied radius stays
close to the weighted threshold.  **Native** walks the HA-Index with
per-mask weighted lower bounds; immune to the implied-radius blowup a
spread-out weight vector causes (a tiny ``min(w)`` makes re-rank sweep
almost the whole tree), at the price of heavier per-node arithmetic.

This bench times both plans across weight profiles x thresholds on the
same NUS-WIDE-like corpus, asserting byte-identical result sets per
cell, and measures precision@k of *unweighted* kNN against the
weighted ground truth — the gap is the reason the query plane exists.
Machine-readable output goes to ``benchmarks/results/
BENCH_weighted.json``; ``python benchmarks/bench_ext_weighted.py
--verify`` runs the exactness sweep alone (the CI smoke lane).
"""

from __future__ import annotations

import json
import sys
import time

import numpy as np

from repro.core.bitvector import CodeSet
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.knn import knn_select
from repro.core.weighted import (
    SCALE,
    WeightedHammingIndex,
    Weights,
)

from benchmarks.harness import (
    RESULTS_DIR,
    paper_codes,
    record,
    render_table,
    sample_queries,
    scale,
    scaled,
)

WORKLOAD_SIZE = 30_000
NUM_QUERIES = 48
BITS = 32
THRESHOLDS = (1.0, 2.0, 3.0, 5.0)
REPEATS = 3
K = 10


def _weight_profiles(bits: int) -> dict[str, Weights]:
    """Weight vectors spanning the plan trade-off.

    ``near-uniform`` keeps min(w) high, so re-rank's implied radius
    barely exceeds the weighted threshold; ``spread`` drives min(w)
    toward zero, which blows the implied radius up toward the full
    code width and is where the native plan earns its keep.
    """
    rng = np.random.default_rng(17)
    return {
        "near-uniform": Weights(rng.uniform(0.8, 1.2, bits).tolist()),
        "spread": Weights(rng.uniform(0.05, 4.0, bits).tolist()),
    }


def _best_of(run, repeats: int = REPEATS) -> float:
    run()
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def _per_query_ms(run, queries) -> float:
    return _best_of(run) / len(queries) * 1000.0


def _oracle_scaled(codes: CodeSet, weights: Weights) -> np.ndarray:
    """n x bits int64 matrix of per-code bit lanes -> scaled distances."""
    lanes = np.array(
        [
            [(code >> (codes.length - 1 - pos)) & 1
             for pos in range(codes.length)]
            for code in codes.codes
        ],
        dtype=np.int64,
    )
    return lanes, np.asarray(weights.scaled, dtype=np.int64)


def _oracle_distances(lanes, scaled_weights, query, length) -> np.ndarray:
    qbits = np.array(
        [(query >> (length - 1 - pos)) & 1 for pos in range(length)],
        dtype=np.int64,
    )
    return (lanes ^ qbits) @ scaled_weights


def _build_pair(codes: CodeSet, weights: Weights):
    native = WeightedHammingIndex(
        DynamicHAIndex.build(codes), weights=weights, strategy="native"
    )
    rerank = WeightedHammingIndex(
        DynamicHAIndex.build(codes), weights=weights, strategy="rerank"
    )
    return native, rerank


def verify(n: int = 4_000, num_queries: int = 12) -> int:
    """Exactness sweep: both plans vs the matrix oracle.  Returns cases."""
    codes = paper_codes("NUS-WIDE", n, bits=BITS)
    queries = sample_queries(codes, num_queries, seed=9)
    lanes, _ = _oracle_scaled(codes, _weight_profiles(BITS)["spread"])
    cases = 0
    for profile, weights in _weight_profiles(BITS).items():
        native, rerank = _build_pair(codes, weights)
        scaled_w = np.asarray(weights.scaled, dtype=np.int64)
        for query in queries:
            oracle = _oracle_distances(lanes, scaled_w, query, BITS)
            for threshold in THRESHOLDS:
                t_scaled = int(round(threshold * SCALE))
                want = sorted(
                    int(i) for i in np.flatnonzero(oracle <= t_scaled)
                )
                for plan, index in (("native", native),
                                    ("rerank", rerank)):
                    got = sorted(index.search(query, threshold))
                    assert got == want, (
                        f"{profile}/{plan} h={threshold} q={query:#x}: "
                        f"{len(got)} vs oracle {len(want)}"
                    )
                    cases += 1
            order = np.lexsort((np.arange(oracle.size), oracle))[:K]
            want_knn = [
                (int(i), float(oracle[i]) / SCALE) for i in order
            ]
            for plan, index in (("native", native), ("rerank", rerank)):
                got = index.knn_search(query, K)
                assert got == want_knn, (
                    f"{profile}/{plan} kNN q={query:#x}: {got[:3]}..."
                )
                cases += 1
    return cases


def test_weighted_plan_crossover(benchmark):
    """Time native vs re-rank per (profile, threshold) cell."""
    codes = paper_codes("NUS-WIDE", scaled(WORKLOAD_SIZE), bits=BITS)
    queries = sample_queries(codes, NUM_QUERIES, seed=5)
    profiles = _weight_profiles(BITS)
    pairs = {
        name: _build_pair(codes, weights)
        for name, weights in profiles.items()
    }

    def run():
        measured = {}
        for name, (native, rerank) in pairs.items():
            for threshold in THRESHOLDS:
                for query in queries[:8]:
                    assert sorted(native.search(query, threshold)) == (
                        sorted(rerank.search(query, threshold))
                    ), f"{name} h={threshold} q={query:#x}"
                native_ms = _per_query_ms(
                    lambda: [
                        native.search(q, threshold) for q in queries
                    ],
                    queries,
                )
                rerank_ms = _per_query_ms(
                    lambda: [
                        rerank.search(q, threshold) for q in queries
                    ],
                    queries,
                )
                native.search(queries[0], threshold)
                native_ops = native.last_search_ops
                rerank.search(queries[0], threshold)
                rerank_ops = rerank.last_search_ops
                measured[(name, threshold)] = {
                    "native_ms": native_ms,
                    "rerank_ms": rerank_ms,
                    "native_speedup": rerank_ms / native_ms,
                    "native_ops": native_ops,
                    "rerank_ops": rerank_ops,
                    "implied_radius": profiles[name].implied_radius(
                        threshold, BITS
                    ),
                }
        return measured

    measured = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (name, threshold), cell in measured.items():
        winner = (
            "native" if cell["native_ms"] < cell["rerank_ms"]
            else "rerank"
        )
        rows.append(
            [
                name,
                f"t={threshold:g}",
                f"r*={cell['implied_radius']}",
                f"{cell['native_ms']:.3f}",
                f"{cell['rerank_ms']:.3f}",
                f"{cell['native_speedup']:.2f}x",
                winner,
            ]
        )
    n = scaled(WORKLOAD_SIZE)
    table = render_table(
        f"Extension: weighted Hamming, native sweep vs re-rank "
        f"(NUS-WIDE-like, n={n}, q={BITS}, {NUM_QUERIES} queries, "
        f"best of {REPEATS})",
        ["weights", "threshold", "implied radius", "native ms",
         "rerank ms", "native speedup", "winner"],
        rows,
        note=(
            "Identical result sets per cell (asserted).  r* is the "
            "unweighted radius re-rank must sweep (floor(t / min(w))); "
            "a spread weight vector pushes r* toward the code width "
            "and hands the cell to the native per-mask lower-bound "
            "sweep, while near-uniform weights keep r* tight and let "
            "the cheaper unweighted kernel win."
        ),
    )
    record("ext_weighted_crossover", table)

    payload = {
        "workload": "NUS-WIDE-like",
        "n": n,
        "bits": BITS,
        "thresholds": list(THRESHOLDS),
        "num_queries": NUM_QUERIES,
        "repeats": REPEATS,
        "scale": scale(),
        "cells": {
            f"{name}@{threshold:g}": cell
            for (name, threshold), cell in measured.items()
        },
        "native_wins": [
            f"{name}@{threshold:g}"
            for (name, threshold), cell in measured.items()
            if cell["native_ms"] < cell["rerank_ms"]
        ],
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "BENCH_weighted.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # Acceptance only at full scale: tiny corpora time pure overhead.
    if scale() >= 1.0:
        spread_cells = {
            f"t={t:g}": cell
            for (name, t), cell in measured.items()
            if name == "spread"
        }
        assert any(
            cell["native_ms"] < cell["rerank_ms"]
            for cell in spread_cells.values()
        ), f"native must win a spread-weights cell: {spread_cells}"


def test_weighted_knn_precision_of_unweighted_ranking(benchmark):
    """Unweighted kNN vs weighted ground truth: the motivating gap."""
    codes = paper_codes("NUS-WIDE", scaled(WORKLOAD_SIZE), bits=BITS)
    queries = sample_queries(codes, 16, seed=7)
    weights = _weight_profiles(BITS)["spread"]
    native, rerank = _build_pair(codes, weights)
    flat = DynamicHAIndex.build(codes).compile()
    lanes, scaled_w = _oracle_scaled(codes, weights)

    def run():
        native_s = _best_of(
            lambda: [native.knn_search(q, K) for q in queries]
        )
        rerank_s = _best_of(
            lambda: [rerank.knn_search(q, K) for q in queries]
        )
        overlaps = []
        for query in queries:
            oracle = _oracle_distances(lanes, scaled_w, query, BITS)
            truth = {
                int(i)
                for i in np.lexsort(
                    (np.arange(oracle.size), oracle)
                )[:K]
            }
            unweighted = {
                pair[0] for pair in knn_select(query, flat, K)
            }
            overlaps.append(len(truth & unweighted) / K)
        return native_s, rerank_s, overlaps

    native_s, rerank_s, overlaps = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    precision = sum(overlaps) / len(overlaps)
    # Exactness: the weighted kNN itself matches the oracle ranking.
    for query in queries[:6]:
        oracle = _oracle_distances(lanes, scaled_w, query, BITS)
        order = np.lexsort((np.arange(oracle.size), oracle))[:K]
        want = [(int(i), float(oracle[i]) / SCALE) for i in order]
        assert native.knn_search(query, K) == want
        assert rerank.knn_search(query, K) == want

    table = render_table(
        f"Extension: weighted kNN (n={len(codes)}, q={BITS}, k={K}, "
        f"spread weights)",
        ["metric", "value"],
        [
            ["native kNN ms/query",
             f"{native_s / len(queries) * 1000:.3f}"],
            ["rerank kNN ms/query",
             f"{rerank_s / len(queries) * 1000:.3f}"],
            ["precision@k of unweighted ranking", f"{precision:.2f}"],
        ],
        note=(
            "precision@k is |top-k(unweighted) intersect "
            "top-k(weighted)| / k against the exact weighted ground "
            "truth — the fraction of weighted neighbors an unweighted "
            "index would have returned.  Both weighted plans match "
            "the ground-truth ranking exactly (asserted)."
        ),
    )
    record("ext_weighted_knn", table)
    payload_path = RESULTS_DIR / "BENCH_weighted.json"
    payload = (
        json.loads(payload_path.read_text())
        if payload_path.exists()
        else {}
    )
    payload["knn"] = {
        "k": K,
        "native_ms": native_s / len(queries) * 1000.0,
        "rerank_ms": rerank_s / len(queries) * 1000.0,
        "unweighted_precision_at_k": precision,
    }
    payload_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    if scale() >= 1.0:
        assert precision < 1.0, (
            "spread weights must reorder the neighborhood — otherwise "
            "the weighted plane adds nothing over the unweighted kNN"
        )


if __name__ == "__main__":
    if "--verify" in sys.argv:
        cases = verify()
        print(f"weighted verify OK ({cases} plan-vs-oracle cases)")
    else:
        print(
            "run under pytest for timings, or pass --verify for the "
            "exactness sweep"
        )
        raise SystemExit(2)
