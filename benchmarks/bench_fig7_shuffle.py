"""Figure 7: shuffle cost of the distributed joins vs. data size.

Regenerates Figure 7 (a/b/c): total shuffled + broadcast bytes of PGBJ,
PMH-10, MRHA-Index-A and MRHA-Index-B on a self-join workload as the
dataset grows through the paper's x-s scaling technique.

The paper scales x5..x25 on a 16-node cluster; the default here scales
x1..x5 from a smaller base so the sweep runs in minutes — growth trends
and the ordering are scale-invariant.

Expected shape (log scale in the paper): PGBJ far above everything (it
shuffles full d-dimensional vectors, with replication); PMH-10 next (it
broadcasts the 10-fold-replicated MultiHashTable); MRHA-A below it, and
MRHA-B lowest (leaf-less index broadcast).
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.data.scaling import scale_dataset
from repro.data.synthetic import PAPER_DATASETS
from repro.distributed.hamming_join import mapreduce_hamming_join
from repro.distributed.pgbj import pgbj_knn_join
from repro.distributed.pmh import pmh_hamming_join
from repro.mapreduce.cluster import Cluster
from repro.mapreduce.runtime import MapReduceRuntime
from repro.metrics import megabytes

from benchmarks.harness import (
    DEFAULT_K,
    DEFAULT_THRESHOLD,
    JOIN_BASE_SIZE,
    record,
    render_table,
    scaled,
)

DATASETS = ["NUS-WIDE", "Flickr", "DBPedia"]
SCALE_FACTORS = [1, 2, 3, 4, 5, 8]
NUM_WORKERS = 16
SAMPLE_SIZE = 200


def _records(dataset_name: str, factor: int):
    base = PAPER_DATASETS[dataset_name](scaled(JOIN_BASE_SIZE), seed=3)
    grown = scale_dataset(base, factor)
    return list(zip(range(len(grown)), grown.vectors))


@lru_cache(maxsize=None)
def run_all_joins(dataset_name: str, factor: int) -> dict[str, object]:
    """One sweep cell: all four algorithms on the same scaled records."""
    records = _records(dataset_name, factor)
    runtime = MapReduceRuntime(Cluster(NUM_WORKERS))
    pgbj = pgbj_knn_join(
        runtime, records, records, k=DEFAULT_K, sample_size=SAMPLE_SIZE
    )
    pmh = pmh_hamming_join(
        runtime, records, records, DEFAULT_THRESHOLD,
        num_tables=10, sample_size=SAMPLE_SIZE,
    )
    option_a = mapreduce_hamming_join(
        runtime, records, records, DEFAULT_THRESHOLD,
        option="A", sample_size=SAMPLE_SIZE,
    )
    option_b = mapreduce_hamming_join(
        runtime, records, records, DEFAULT_THRESHOLD,
        option="B", sample_size=SAMPLE_SIZE,
    )
    return {
        "n": len(records),
        "PGBJ": pgbj,
        "PMH-10": pmh,
        "MRHA-INDEX-A": option_a,
        "MRHA-INDEX-B": option_b,
    }


def test_shuffle_cost_ordering(benchmark):
    """The Figure 7 ordering at one cell, asserted and benchmarked."""

    def run():
        return run_all_joins("NUS-WIDE", 2)

    cell = benchmark.pedantic(run, rounds=1, iterations=1)
    pgbj = cell["PGBJ"].data_shuffle_bytes
    pmh = cell["PMH-10"].data_shuffle_bytes
    option_a = cell["MRHA-INDEX-A"].data_shuffle_bytes
    option_b = cell["MRHA-INDEX-B"].data_shuffle_bytes
    assert pgbj > pmh > option_a > option_b


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig7_report(benchmark, dataset):
    def run() -> str:
        rows = []
        for factor in SCALE_FACTORS:
            cell = run_all_joins(dataset, factor)
            rows.append(
                [
                    f"x{factor} ({cell['n']})",
                    megabytes(cell["PGBJ"].data_shuffle_bytes),
                    megabytes(cell["PMH-10"].data_shuffle_bytes),
                    megabytes(cell["MRHA-INDEX-A"].data_shuffle_bytes),
                    megabytes(cell["MRHA-INDEX-B"].data_shuffle_bytes),
                ]
            )
        return render_table(
            f"Figure 7 ({dataset}-like, {NUM_WORKERS} workers): shuffle "
            "cost (MB, data-dependent) of the self-join vs. data size",
            ["size", "PGBJ", "PMH-10", "MRHA-INDEX-A", "MRHA-INDEX-B"],
            rows,
            note=(
                "Paper plots GB at x5..x25 of the full corpora; the "
                "ordering PGBJ >> PMH-10 > MRHA-A > MRHA-B is the "
                "reproduced shape."
            ),
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    record(f"fig7_{dataset.lower().replace('-', '')}", table)
