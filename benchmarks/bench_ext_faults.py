"""Extension: fault-injection overhead and speculative-execution speedup.

Two questions the paper's reliability story raises but never measures:

1. What does task-level chaos *cost*?  The distributed self-join runs
   under seeded crash probabilities {0, 0.05, 0.2}; re-executed attempts
   and exponential backoff are charged to the simulated wall clock, so
   the overhead column is the price of MapReduce's "simply re-execute"
   fault tolerance.  The result set is asserted identical in every cell
   (fault transparency).

2. What does speculative execution *buy*?  A straggler-skewed cluster
   (one worker slowed 10x) runs a map-heavy workload with speculation
   off vs. on; backup attempts on healthy survivors cut the wave's
   critical path.
"""

from __future__ import annotations

from benchmarks.harness import record, render_table, scaled
from repro.data.synthetic import nuswide_like
from repro.distributed.hamming_join import mapreduce_hamming_join
from repro.mapreduce.cluster import Cluster
from repro.mapreduce.counters import (
    BACKOFF_SECONDS,
    TASK_RETRIES,
    TASK_SPECULATIVE,
)
from repro.mapreduce.faults import ChaosPolicy, FaultPlan
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runtime import MapReduceRuntime

CRASH_PROBS = [0.0, 0.05, 0.2]
NUM_WORKERS = 8
THRESHOLD = 3
NUM_BITS = 16


def _workload():
    dataset = nuswide_like(scaled(500), seed=11)
    return list(zip(range(len(dataset)), dataset.vectors))


def _join_under_chaos(records, crash_prob: float):
    plan = None
    if crash_prob > 0:
        plan = FaultPlan(ChaosPolicy(seed=7, crash_prob=crash_prob))
    runtime = MapReduceRuntime(
        Cluster(NUM_WORKERS), fault_plan=plan, max_task_attempts=6
    )
    report = mapreduce_hamming_join(
        runtime, records, records, threshold=THRESHOLD,
        num_bits=NUM_BITS, option="A", sample_size=200,
        exclude_self_pairs=True,
    )
    return report, runtime.cluster.counters


def _straggler_run(speculation: bool):
    """A map-heavy wave on a cluster whose worker 0 is slowed 10x."""
    policy = ChaosPolicy(seed=3, straggler_factor=10.0, slow_workers=(0,))
    runtime = MapReduceRuntime(
        Cluster(NUM_WORKERS),
        fault_plan=FaultPlan(policy),
        speculative_execution=speculation,
    )

    def burn_mapper(key, value, context):
        total = 0
        for i in range(20_000):
            total += i * i
        yield key % NUM_WORKERS, total

    def reducer(key, values, context):
        yield key, sum(values)

    tasks = scaled(64)
    result = runtime.run(
        MapReduceJob(name="straggled", mapper=burn_mapper, reducer=reducer),
        [(i, i) for i in range(tasks)],
        num_splits=tasks,
    )
    return result, runtime.cluster.counters


def test_crash_overhead_report(benchmark):
    """Chaos costs time, never answers."""

    def run() -> str:
        records = _workload()
        rows = []
        baseline_pairs = None
        baseline_seconds = None
        for crash_prob in CRASH_PROBS:
            report, counters = _join_under_chaos(records, crash_prob)
            if baseline_pairs is None:
                baseline_pairs = report.pairs
                baseline_seconds = report.total_seconds
            assert report.pairs == baseline_pairs, "fault transparency broken"
            overhead = report.total_seconds / baseline_seconds - 1.0
            rows.append([
                f"{crash_prob:.2f}",
                report.total_seconds,
                f"{overhead * 100:+.1f}%",
                counters.get(TASK_RETRIES),
                round(counters.get(BACKOFF_SECONDS), 2),
                len(report.pairs),
            ])
        return render_table(
            "Fault overhead: distributed self-join under injected "
            f"task crashes ({NUM_WORKERS} workers, h={THRESHOLD})",
            ["crash prob", "modelled s", "overhead", "retries",
             "backoff s", "pairs"],
            rows,
            note=(
                "Identical result set in every row (fault transparency); "
                "re-executed attempts plus exponential backoff are the "
                "price of MapReduce's re-execution fault tolerance."
            ),
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ext_faults", table)


def test_speculation_speedup_report(benchmark):
    """A backup attempt on a healthy worker beats a 10x straggler."""

    def run() -> str:
        off_result, _ = _straggler_run(speculation=False)
        on_result, on_counters = _straggler_run(speculation=True)
        assert sorted(on_result.output) == sorted(off_result.output)
        assert on_result.simulated_seconds < off_result.simulated_seconds, (
            "speculation should cut the straggler-stretched wall clock"
        )
        speedup = off_result.simulated_seconds / on_result.simulated_seconds
        rows = [
            ["off", off_result.simulated_seconds, 0, "1.00x"],
            [
                "on",
                on_result.simulated_seconds,
                on_counters.get(TASK_SPECULATIVE),
                f"{speedup:.2f}x",
            ],
        ]
        return render_table(
            "Speculative execution on a straggler-skewed cluster "
            f"(worker 0 slowed 10x, {NUM_WORKERS} workers)",
            ["speculation", "modelled s", "backups", "speedup"],
            rows,
            note=(
                "First finisher wins; the loser's time until the kill is "
                "still charged, so the speedup is bounded by the "
                "straggler's share of the critical path."
            ),
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ext_faults_speculation", table)
