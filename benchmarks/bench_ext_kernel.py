"""Extension bench: the compiled flat H-Search kernel vs. the node walk.

The paper's cost model (Section 6, Figure 6) counts distance
computations; both query planes in this repo do the *same* number of
them (``last_search_ops`` is checked equal in tests/test_flat_ha.py).
What the flat kernel changes is the constant factor: the per-node
Python interpreter dispatch of the tree walk becomes a handful of
vectorized numpy sweeps per level.  Three tables:

* single-query and batched latency per threshold, against the node
  walk and against the ``batch_select`` linear scan (the no-index
  baseline the paper beats);
* batched speedup across batch sizes (amortizing per-level fixed cost
  over the multi-query frontier);
* self-join throughput: node probes vs. flat batch probes vs. the
  process-parallel probe plane.

Results are recorded both as text tables and as machine-readable
``benchmarks/results/BENCH_kernel.json`` (consumed by CI).
"""

from __future__ import annotations

import json
import time

import pytest

from repro.core.bitvector import batch_select
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.join import self_join

from benchmarks.harness import (
    RESULTS_DIR,
    paper_codes,
    profile_queries,
    record,
    render_table,
    sample_queries,
    scale,
    scaled,
)

WORKLOAD_SIZE = 30_000
JOIN_SIZE = 6_000
NUM_QUERIES = 64
THRESHOLDS = (1, 3, 5)
BATCH_SIZES = (16, 32, 64)
REPEATS = 5
JOIN_WORKERS = 4


@pytest.fixture(scope="module")
def kernel_workload():
    codes = paper_codes("NUS-WIDE", scaled(WORKLOAD_SIZE))
    index = DynamicHAIndex.build(codes)
    flat = index.compile()
    queries = sample_queries(codes, NUM_QUERIES, seed=3)
    return codes, index, flat, queries


def _best_of(run, repeats: int = REPEATS) -> float:
    """Best wall-clock of ``repeats`` runs after one warm-up call."""
    run()
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def _per_query_ms(run, queries) -> float:
    return _best_of(run) / len(queries) * 1000.0


def _batched(queries, size):
    return [queries[lo:lo + size] for lo in range(0, len(queries), size)]


def _write_json(payload: dict) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "BENCH_kernel.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_flat_kernel_speedup(benchmark, kernel_workload):
    """Acceptance (full scale): >= 4x single-query, >= 10x batched."""
    codes, index, flat, queries = kernel_workload
    packed = codes.packed()

    def run():
        rows = []
        measured = {}
        for threshold in THRESHOLDS:
            node_ms = _per_query_ms(
                lambda: [index.search(q, threshold) for q in queries],
                queries,
            )
            flat_ms = _per_query_ms(
                lambda: [flat.search(q, threshold) for q in queries],
                queries,
            )
            batches = _batched(queries, 32)
            batch_ms = _per_query_ms(
                lambda: [flat.search_batch(b, threshold) for b in batches],
                queries,
            )
            scan_ms = _per_query_ms(
                lambda: [
                    batch_select(packed, q, threshold) for q in queries
                ],
                queries,
            )
            measured[threshold] = {
                "node_ms": node_ms,
                "flat_ms": flat_ms,
                "batch32_ms": batch_ms,
                "scan_ms": scan_ms,
                "flat_speedup": node_ms / flat_ms,
                "batch32_speedup": node_ms / batch_ms,
            }
            rows.append(
                [
                    f"h={threshold}",
                    f"{node_ms:.3f}",
                    f"{flat_ms:.3f}",
                    f"{node_ms / flat_ms:.1f}x",
                    f"{batch_ms:.3f}",
                    f"{node_ms / batch_ms:.1f}x",
                    f"{scan_ms:.3f}",
                ]
            )
        table = render_table(
            f"Extension: flat H-Search kernel vs node walk "
            f"(NUS-WIDE-like, n={len(codes)}, {len(queries)} queries, "
            f"best of {REPEATS})",
            ["threshold", "node ms", "flat ms", "speedup",
             "batch32 ms", "speedup", "scan ms"],
            rows,
            note=(
                "Identical result sets and identical distance-"
                "computation counts; the flat kernel only replaces "
                "per-node Python dispatch with level-major numpy "
                "sweeps.  The scan column is the no-index "
                "batch_select baseline."
            ),
        )
        return measured, table

    measured, table = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ext_kernel_select", table)

    sizes = {}
    for size in BATCH_SIZES:
        batches = _batched(queries, size)
        batch_ms = _per_query_ms(
            lambda: [flat.search_batch(b, 3) for b in batches], queries
        )
        sizes[size] = {
            "batch_ms": batch_ms,
            "speedup": measured[3]["node_ms"] / batch_ms,
        }
    size_table = render_table(
        f"Extension: batched kernel speedup by batch size "
        f"(n={len(codes)}, h=3)",
        ["batch", "ms/query", "speedup vs node walk"],
        [
            [size, f"{cell['batch_ms']:.3f}", f"{cell['speedup']:.1f}x"]
            for size, cell in sizes.items()
        ],
        note=(
            "One frontier sweep per level serves the whole batch; "
            "per-level fixed costs amortize with batch size."
        ),
    )
    record("ext_kernel_batch", size_table)
    _write_json(
        {
            "workload": "NUS-WIDE-like",
            "n": len(codes),
            "bits": codes.length,
            "num_queries": len(queries),
            "repeats": REPEATS,
            "scale": scale(),
            "select": {str(h): cell for h, cell in measured.items()},
            "batch_sizes": {str(s): cell for s, cell in sizes.items()},
            # Per-phase span breakdown (h=3): where each engine's time
            # and distance computations go, level by level.
            "profile": {
                "nodes": profile_queries(index, queries[:16], 3),
                "flat": profile_queries(flat, queries[:16], 3),
            },
        }
    )
    if scale() >= 1.0:
        # Measured range across machines is 4.6x-5.7x for the
        # single-query path (the gate is the floor of that range, not
        # the headline); the batched path is the stable >= 10x claim.
        assert measured[3]["flat_speedup"] >= 4.0, (
            f"single-query flat kernel {measured[3]['flat_speedup']:.1f}x "
            f"must be >= 4x at h=3"
        )
        assert measured[3]["batch32_speedup"] >= 10.0, (
            f"batched flat kernel {measured[3]['batch32_speedup']:.1f}x "
            f"must be >= 10x at h=3"
        )
    else:
        assert measured[3]["flat_speedup"] >= 1.0
        assert measured[3]["batch32_speedup"] >= 1.0


def test_native_kernel_speedup(benchmark, kernel_workload):
    """Acceptance (full scale): native >= 5x over flat single-query at h=3.

    The native plane compiles the identical level-major sweep to
    machine code (numba when importable, a runtime-compiled C library
    otherwise), so the wins below are pure constant-factor: same
    visits, same emissions, same op counts (asserted here and in the
    differential suite).
    """
    from repro.core import native as native_backends

    codes, index, flat, queries = kernel_workload
    nat = index.compile_native()
    backend = nat.backend

    def run():
        rows = []
        measured = {}
        for threshold in THRESHOLDS:
            flat_ms = _per_query_ms(
                lambda: [flat.search(q, threshold) for q in queries],
                queries,
            )
            native_ms = _per_query_ms(
                lambda: [nat.search(q, threshold) for q in queries],
                queries,
            )
            batches = _batched(queries, 32)
            batch_ms = _per_query_ms(
                lambda: [nat.search_batch(b, threshold) for b in batches],
                queries,
            )
            measured[threshold] = {
                "flat_ms": flat_ms,
                "native_ms": native_ms,
                "native_batch32_ms": batch_ms,
                "native_speedup": flat_ms / native_ms,
                "native_batch32_speedup": flat_ms / batch_ms,
            }
            rows.append(
                [
                    f"h={threshold}",
                    f"{flat_ms:.3f}",
                    f"{native_ms:.4f}",
                    f"{flat_ms / native_ms:.1f}x",
                    f"{batch_ms:.4f}",
                    f"{flat_ms / batch_ms:.1f}x",
                ]
            )
        return measured, rows

    measured, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        f"Extension: native H-Search kernel ({backend}) vs flat numpy "
        f"kernel (NUS-WIDE-like, n={len(codes)}, {len(queries)} "
        f"queries, best of {REPEATS})",
        ["threshold", "flat ms", "native ms", "speedup",
         "batch32 ms", "speedup"],
        rows,
        note=(
            f"Backend: {backend} (tiers: numba > cc > numpy; "
            f"REPRO_NATIVE overrides).  Identical answers and "
            f"identical per-level op accounting are enforced by "
            f"bench-kernel --verify and the differential suite."
        ),
    )
    record("ext_kernel_native", table)

    # Answer-set sanity directly on the benched workload.
    for threshold in THRESHOLDS:
        for q in queries[:8]:
            assert nat.search(q, threshold) == flat.search(q, threshold)
            assert nat.last_search_ops == flat.last_search_ops

    json_path = RESULTS_DIR / "BENCH_kernel.json"
    payload = json.loads(json_path.read_text()) if json_path.exists() else {}
    payload["native"] = {
        "backend": backend,
        "requested": native_backends.requested_backend(),
        "select": {str(h): cell for h, cell in measured.items()},
        "methodology": (
            "same workload/queries as the flat rows; best-of-"
            f"{REPEATS} wall clock per cell after one warm-up; "
            "speedups are vs the flat numpy single-query path"
        ),
    }
    _write_json(payload)
    if scale() >= 1.0 and backend != "numpy":
        assert measured[3]["native_speedup"] >= 5.0, (
            f"native kernel {measured[3]['native_speedup']:.1f}x over "
            f"flat must be >= 5x at h=3"
        )
    else:
        assert measured[3]["native_speedup"] >= 0.5


def test_bitsliced_verification(benchmark, kernel_workload):
    """Bit-sliced query-parallel verification vs broadcast popcount.

    Verification orientation: candidates arrive one at a time (buffered
    inserts, probe hits), queries 64 at a time.  The bit-sliced plane
    answers "candidate c vs every query" with ``width`` XORs plus a
    ripple-carry counter network; the broadcast popcount is the (C, B)
    XOR/popcount matrix the flat kernel's buffer scan uses today.

    This is a measured *negative* result at this batch size: with 64
    queries, one query batch fits a single uint64 word per bit plane,
    so the whole popcount comparison is one vectorized numpy call while
    the sliced plane pays a Python-level carry network per candidate.
    Bit-slicing only amortizes when the query batch is far wider than
    the machine word; broadcast popcount stays the production buffer
    scan, and the sliced layout is kept as the exactness-pinned
    reference (hypothesis property suite, widths 32/64/128).
    """
    import numpy as np

    from repro.core.bitslice import BitSlicedBatch
    from repro.core.bitvector import popcount64

    codes, _, _, queries = kernel_workload
    threshold = 3
    candidates = [codes[i * 17 % len(codes)] for i in range(64)]
    qarr = np.array(queries, dtype=np.uint64)
    cand_arr = np.array(candidates, dtype=np.uint64)

    def popcount_run():
        return popcount64(cand_arr[:, None] ^ qarr[None, :]) <= threshold

    sliced = BitSlicedBatch(queries, codes.length)

    def sliced_run():
        return sliced.matches(candidates, threshold)

    pop_s = _best_of(popcount_run)
    sliced_s = _best_of(sliced_run)
    assert np.array_equal(popcount_run(), sliced_run())
    table = render_table(
        f"Extension: bit-sliced verification, {len(candidates)} "
        f"candidates x {len(queries)} queries (h={threshold})",
        ["plane", "seconds", "vs popcount"],
        [
            ["broadcast popcount", f"{pop_s:.6f}", "1x (baseline)"],
            ["bit-sliced planes", f"{sliced_s:.6f}",
             f"{sliced_s / pop_s:.0f}x slower"],
        ],
        note=(
            "Measured negative result: at 64 queries each bit plane is "
            "one machine word, so broadcast popcount is a single numpy "
            "call while the sliced plane runs a Python carry network "
            "per candidate.  Both planes emit the identical "
            "(candidate, query) match matrix (asserted; exactness is "
            "pinned by the hypothesis property suite at widths "
            "32/64/128 with ragged tails)."
        ),
    )
    record("ext_kernel_bitslice", table)
    json_path = RESULTS_DIR / "BENCH_kernel.json"
    payload = json.loads(json_path.read_text()) if json_path.exists() else {}
    payload["bitslice"] = {
        "num_queries": len(queries),
        "num_candidates": len(candidates),
        "popcount_s": pop_s,
        "sliced_s": sliced_s,
        "slowdown": sliced_s / pop_s,
        "verdict": (
            "broadcast popcount remains the production buffer scan; "
            "bit-slicing needs query batches far wider than the "
            "machine word to amortize its per-candidate carry network"
        ),
    }
    _write_json(payload)
    benchmark.pedantic(sliced_run, rounds=1, iterations=1)


def test_parallel_join_throughput(benchmark, kernel_workload):
    """Flat batch probes beat node probes; parallel plane stays exact."""
    codes, _, _, _ = kernel_workload
    join_codes = codes.subset(range(scaled(JOIN_SIZE)))

    def run():
        timings = {}
        pair_counts = {}
        for label, kwargs in (
            ("nodes", {"engine": "nodes"}),
            ("flat", {"engine": "flat"}),
            (f"flat +{JOIN_WORKERS} workers",
             {"engine": "flat", "parallel": True,
              "workers": JOIN_WORKERS}),
        ):
            started = time.perf_counter()
            pairs = self_join(join_codes, 3, **kwargs)
            timings[label] = time.perf_counter() - started
            pair_counts[label] = len(pairs)
        return timings, pair_counts

    timings, pair_counts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(set(pair_counts.values())) == 1, (
        f"every probe plane must return the same pair set: {pair_counts}"
    )
    node_s = timings["nodes"]
    table = render_table(
        f"Extension: self h-join probe planes "
        f"(n={len(join_codes)}, h=3, {next(iter(pair_counts.values()))} "
        f"pairs)",
        ["probe plane", "seconds", "speedup"],
        [
            [label, f"{seconds:.2f}", f"{node_s / seconds:.1f}x"]
            for label, seconds in timings.items()
        ],
        note=(
            "All planes emit identical pair sets (asserted).  The "
            "parallel plane ships the pickled flat kernel to a "
            "process pool and probes distinct codes in chunks; it "
            "pays serialization once per worker, so it needs large "
            "probe sides to win."
        ),
    )
    record("ext_kernel_join", table)
    json_path = RESULTS_DIR / "BENCH_kernel.json"
    payload = json.loads(json_path.read_text()) if json_path.exists() else {}
    payload["self_join"] = {
        "n": len(join_codes),
        "pairs": next(iter(pair_counts.values())),
        "seconds": timings,
        "speedup_flat": node_s / timings["flat"],
    }
    _write_json(payload)
    if scale() >= 1.0:
        assert timings["flat"] < node_s, (
            "flat batch probes must beat the node walk on the join"
        )
