"""Figure 9: running time of the distributed joins vs. data size.

Regenerates Figure 9 (a/b/c): end-to-end modelled cluster time of PGBJ,
PMH-10, MRHA-Index-A and MRHA-Index-B on the self-join workload as data
grows.  The modelled time is the per-phase max-over-workers schedule
(see ``repro.mapreduce.runtime``) plus the centralized phases, measured
from real execution of the algorithm code.

Expected shape: PGBJ grows superlinearly (per-cell exact kNN in the
original space) and is slowest; the hashed approaches grow near
linearly, with the MRHA variants fastest.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_fig7_shuffle import (
    DATASETS,
    SCALE_FACTORS,
    run_all_joins,
)
from benchmarks.harness import record, render_table

ALGORITHMS = ["PGBJ", "PMH-10", "MRHA-INDEX-A", "MRHA-INDEX-B"]


def test_running_time_ordering(benchmark):
    """PGBJ is slowest at a representative cell."""

    def run():
        return run_all_joins("NUS-WIDE", 3)

    cell = benchmark.pedantic(run, rounds=1, iterations=1)
    times = {name: cell[name].total_seconds for name in ALGORITHMS}
    assert times["PGBJ"] == max(times.values())


def test_pgbj_superlinear_growth(benchmark):
    """PGBJ's time grows faster than the data (quadratic per cell)."""

    def run():
        small = run_all_joins("NUS-WIDE", 1)
        large = run_all_joins("NUS-WIDE", 4)
        return small, large

    small, large = benchmark.pedantic(run, rounds=1, iterations=1)
    pgbj_growth = large["PGBJ"].total_seconds / small["PGBJ"].total_seconds
    mrha_growth = (
        large["MRHA-INDEX-B"].total_seconds
        / small["MRHA-INDEX-B"].total_seconds
    )
    assert pgbj_growth > mrha_growth


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig9_report(benchmark, dataset):
    def run() -> str:
        rows = []
        for factor in SCALE_FACTORS:
            cell = run_all_joins(dataset, factor)
            rows.append(
                [f"x{factor} ({cell['n']})"]
                + [cell[name].total_seconds for name in ALGORITHMS]
            )
        return render_table(
            f"Figure 9 ({dataset}-like): modelled running time (s) of "
            "the self-join vs. data size",
            ["size"] + ALGORITHMS,
            rows,
            note=(
                "Expected shape: PGBJ superlinear and slowest; hashed "
                "approaches near-linear, MRHA fastest."
            ),
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    record(f"fig9_{dataset.lower().replace('-', '')}", table)
