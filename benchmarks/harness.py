"""Shared benchmark harness: workloads, timing, table rendering.

Every bench module regenerates one table or figure of the paper's
evaluation (Section 6).  The harness provides:

* cached paper-like workloads (dataset -> spectral codes) at a size
  controlled by ``REPRO_BENCH_SCALE`` (default 1.0; the paper's corpora
  are 10-100x larger — see EXPERIMENTS.md for the mapping),
* single-shot sweep timing (``time_queries``) used inside report benches,
* traced per-phase profiles (``profile_queries``) so BENCH JSONs can
  carry span breakdowns next to the headline timings,
* fixed-width table rendering and result recording under
  ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import os
import random
import time
from functools import lru_cache
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.core.bitvector import CodeSet
from repro.core.index_base import HammingIndex
from repro.data.containers import Dataset
from repro.data.synthetic import PAPER_DATASETS
from repro.hashing.spectral import SpectralHash
from repro.obs.trace import last_trace, trace

#: Directory where rendered tables are written for EXPERIMENTS.md.
RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Default tuple counts, scaled by REPRO_BENCH_SCALE.
SELECT_WORKLOAD_SIZE = 30_000
KNN_WORKLOAD_SIZE = 30_000
JOIN_BASE_SIZE = 400

#: Paper defaults (Section 6): h = 3, k = 50, 32-bit codes.
DEFAULT_THRESHOLD = 3
DEFAULT_K = 50
DEFAULT_BITS = 32

#: Queries averaged per timing cell.
NUM_QUERIES = 25


def scale() -> float:
    """Workload scale factor from the environment (default 1.0)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(size: int) -> int:
    return max(64, int(size * scale()))


@lru_cache(maxsize=None)
def paper_dataset(name: str, n: int, seed: int = 1) -> Dataset:
    """One of the paper's three dataset substitutes, cached."""
    return PAPER_DATASETS[name](n, seed=seed)


@lru_cache(maxsize=None)
def paper_codes(name: str, n: int, bits: int = DEFAULT_BITS) -> CodeSet:
    """Spectral-hash codes of a paper dataset, cached."""
    dataset = paper_dataset(name, n)
    hasher = SpectralHash(bits)
    return dataset.encode(hasher.fit(dataset.vectors))


def sample_queries(
    codes: CodeSet, count: int = NUM_QUERIES, seed: int = 0
) -> list[int]:
    """Query codes drawn from the dataset (the paper queries by tuple)."""
    rng = random.Random(seed)
    return [codes[rng.randrange(len(codes))] for _ in range(count)]


def time_queries(
    index: HammingIndex, queries: Sequence[int], threshold: int
) -> float:
    """Average wall-clock per query in milliseconds."""
    started = time.perf_counter()
    for query in queries:
        index.search(query, threshold)
    elapsed = time.perf_counter() - started
    return elapsed / len(queries) * 1000.0


def mean_search_ops(
    index: HammingIndex, queries: Sequence[int], threshold: int
) -> float:
    """Average distance computations per query (the paper's real claim:
    redundant XOR work avoided, independent of constant factors)."""
    total = 0
    for query in queries:
        index.search(query, threshold)
        total += index.last_search_ops
    return total / len(queries)


def profile_queries(
    index: HammingIndex, queries: Sequence[int], threshold: int
) -> dict[str, dict[str, float]]:
    """Per-phase span profile of a query sweep.

    Runs every query under a trace and aggregates the span tree by span
    name: total seconds, total distance computations, and span count.
    The returned mapping (``{"h_search.level": {"seconds": ...,
    "ops": ..., "count": ...}, ...}``) is JSON-ready, so benches can
    record a phase breakdown alongside their headline timings.
    """
    phases: dict[str, dict[str, float]] = {}

    def fold(span) -> None:
        entry = phases.setdefault(
            span.name, {"seconds": 0.0, "ops": 0, "count": 0}
        )
        entry["seconds"] += span.seconds
        entry["ops"] += span.ops
        entry["count"] += 1
        for child in span.children:
            fold(child)

    for query in queries:
        with trace("profile"):
            index.search(query, threshold)
        for child in last_trace().children:
            fold(child)
    return phases


def record_json(name: str, payload: dict) -> Path:
    """Write a machine-readable result under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def time_update(
    index: HammingIndex, codes: CodeSet, count: int = 20, seed: int = 3
) -> float:
    """Average delete-then-reinsert time in ms (Table 4's update time)."""
    rng = random.Random(seed)
    victims = [rng.randrange(len(codes)) for _ in range(count)]
    ids = codes.ids
    started = time.perf_counter()
    for victim in victims:
        index.delete(codes[victim], ids[victim])
        index.insert(codes[victim], ids[victim])
    elapsed = time.perf_counter() - started
    return elapsed / count * 1000.0


def time_call(function: Callable[[], object]) -> tuple[float, object]:
    """(elapsed seconds, return value) of one call."""
    started = time.perf_counter()
    value = function()
    return time.perf_counter() - started, value


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    note: str = "",
) -> str:
    """Fixed-width text table, ready for the terminal and results file."""
    materialized = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))
    lines = [title, "=" * len(title)]
    lines.append(
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append(
            "  ".join(value.rjust(widths[i]) for i, value in enumerate(row))
        )
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines) + "\n"


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.1f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def record(name: str, text: str) -> None:
    """Write a rendered table under benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text)
    print(f"\n{text}")
