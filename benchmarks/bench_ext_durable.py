"""Extension bench: durable-store cold start vs memory-mapped warm start.

One index at paper scale (>= 1M codes at full scale) is H-Built,
compiled, and persisted through :class:`repro.store.DurableIndexStore`.
The bench then compares the two ways a serving process can become
ready:

* **cold** — H-Build from the raw codes plus the flat-kernel compile
  (what a process without a store must do on every start), and
* **warm** — ``store.open()`` on a cleanly shut down store: checksum
  validation, a zero-copy memory map of the snapshot arrays, and the
  lazy kernel rebuild of :class:`repro.store.LazySnapshotIndex`, with
  the Python node graph never materialized.

Both paths must answer a batched select sweep identically before any
number is recorded.  The headline metric — the warm/cold readiness
speedup, including each side's first batched query — lands in
``benchmarks/results/BENCH_durable.json`` with the full breakdown.
"""

from __future__ import annotations

import time

import pytest

from repro.core.dynamic_ha import DynamicHAIndex
from repro.store import DurableIndexStore, LazySnapshotIndex

from benchmarks.harness import (
    paper_codes,
    record,
    record_json,
    render_table,
    sample_queries,
    scale,
    scaled,
)

WORKLOAD_SIZE = 1_000_000
NUM_QUERIES = 256
THRESHOLD = 3
#: Acceptance floor for the warm/cold readiness speedup at full scale.
MIN_SPEEDUP = 10.0


@pytest.fixture(scope="module")
def durable_workload():
    codes = paper_codes("NUS-WIDE", scaled(WORKLOAD_SIZE))
    queries = sample_queries(codes, NUM_QUERIES, seed=17)
    return codes, queries


def test_durable_warm_start(benchmark, durable_workload, tmp_path_factory):
    """Acceptance: identical answers, and a >= 10x warm-start win."""
    codes, queries = durable_workload
    data_dir = tmp_path_factory.mktemp("durable") / "store"

    def run():
        measured = {}

        # -- cold start: H-Build + compile + first batched query ------
        started = time.perf_counter()
        index = DynamicHAIndex.build(codes)
        measured["build_s"] = time.perf_counter() - started
        started = time.perf_counter()
        flat = index.compile()
        measured["compile_s"] = time.perf_counter() - started
        started = time.perf_counter()
        cold_answers = flat.search_batch(queries, THRESHOLD)
        measured["cold_first_batch_s"] = time.perf_counter() - started

        # -- persist (clean shutdown: WAL tail already empty) ---------
        started = time.perf_counter()
        store = DurableIndexStore(data_dir)
        store.initialize(index)
        store.close()
        measured["save_s"] = time.perf_counter() - started

        # -- warm start: map + lazy kernel + first batched query ------
        started = time.perf_counter()
        warm_store = DurableIndexStore(data_dir)
        recovered = warm_store.open()
        measured["open_s"] = time.perf_counter() - started
        assert isinstance(recovered, LazySnapshotIndex)
        assert not recovered.materialized
        started = time.perf_counter()
        warm_answers = recovered.search_batch(queries, THRESHOLD)
        measured["warm_first_batch_s"] = time.perf_counter() - started
        # Readiness must never have required the node-graph decode.
        assert not recovered.materialized
        warm_store.close()

        assert [sorted(ids) for ids in warm_answers] == [
            sorted(ids) for ids in cold_answers
        ], "warm start must answer byte-identically to the cold build"
        return measured

    measured = benchmark.pedantic(run, rounds=1, iterations=1)

    cold_s = (
        measured["build_s"]
        + measured["compile_s"]
        + measured["cold_first_batch_s"]
    )
    warm_s = measured["open_s"] + measured["warm_first_batch_s"]
    speedup = cold_s / warm_s

    rows = [
        [
            "cold (H-Build + compile)",
            f"{measured['build_s']:.2f}",
            f"{measured['compile_s']:.2f}",
            f"{measured['cold_first_batch_s'] * 1000:.1f}",
            f"{cold_s:.2f}",
        ],
        [
            "warm (map + lazy kernel)",
            "-",
            f"{measured['open_s']:.2f}",
            f"{measured['warm_first_batch_s'] * 1000:.1f}",
            f"{warm_s:.2f}",
        ],
    ]
    table = render_table(
        f"Extension: durable warm start "
        f"(NUS-WIDE-like, {len(codes)} codes, h={THRESHOLD}, "
        f"{len(queries)}-query first batch)",
        ["path", "build s", "ready s", "first batch ms", "total s"],
        rows,
        note=(
            f"Warm start is {speedup:.1f}x faster to first answers; "
            f"snapshot save cost {measured['save_s']:.2f}s at "
            "shutdown.  The warm path maps the checksummed snapshot "
            "zero-copy and serves through the flat kernel without "
            "ever rebuilding the Python node graph."
        ),
    )
    record("ext_durable_warm_start", table)
    record_json(
        "BENCH_durable",
        {
            "workload": "NUS-WIDE-like",
            "num_codes": len(codes),
            "threshold": THRESHOLD,
            "first_batch_queries": len(queries),
            "scale": scale(),
            "cold": {
                "build_s": measured["build_s"],
                "compile_s": measured["compile_s"],
                "first_batch_s": measured["cold_first_batch_s"],
                "total_s": cold_s,
            },
            "warm": {
                "open_s": measured["open_s"],
                "first_batch_s": measured["warm_first_batch_s"],
                "total_s": warm_s,
            },
            "save_s": measured["save_s"],
            "speedup": speedup,
        },
    )
    if scale() >= 1.0:
        assert speedup >= MIN_SPEEDUP
    else:  # shrunk CI runs still need a real, non-vacuous win
        assert speedup > 2.0
