"""Extension bench: DHA-vs-MIH crossover across threshold and width.

Multi-Index Hashing and the HA-Index trade differently with the
threshold ``h`` and the code width ``q``.  MIH probes each of its
``m`` substring tables at radius ``floor(h / m)`` — at small radii
the probe sets are tiny (radius 0 is one bucket per table) and the
verification load is a thin candidate union, so MIH is very fast; as
``h`` grows the perturbation enumeration explodes combinatorially and
the candidate union approaches the corpus.  The HA-Index's frontier
instead grows smoothly with ``h``.  The crossover between the two is
the engine-selection rule ``docs/engines.md`` documents.

This bench sweeps (code width x threshold) cells over the same
NUS-WIDE-like corpus and times, per cell, the DHA flat kernel and the
MIH engine (both single-query and batched), asserting that every cell
agrees on the result sets.  Machine-readable output goes to
``benchmarks/results/BENCH_mih.json`` (consumed by CI and the docs);
the acceptance check requires MIH to win at least one cell.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.core.dynamic_ha import DynamicHAIndex
from repro.engines.mih import MIHIndex

from benchmarks.harness import (
    RESULTS_DIR,
    paper_codes,
    record,
    render_table,
    sample_queries,
    scale,
    scaled,
)

WORKLOAD_SIZE = 30_000
NUM_QUERIES = 48
WIDTHS = (32, 64)
THRESHOLDS = (1, 2, 3, 5, 8)
REPEATS = 3
BATCH = 32


def _best_of(run, repeats: int = REPEATS) -> float:
    run()
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def _per_query_ms(run, queries) -> float:
    return _best_of(run) / len(queries) * 1000.0


def _batched(queries, size=BATCH):
    return [queries[lo:lo + size] for lo in range(0, len(queries), size)]


@pytest.fixture(scope="module")
def mih_workloads():
    """Per-width (codes, flat DHA kernel, MIH index, queries)."""
    cells = {}
    for bits in WIDTHS:
        codes = paper_codes("NUS-WIDE", scaled(WORKLOAD_SIZE), bits=bits)
        flat = DynamicHAIndex.build(codes).compile()
        mih = MIHIndex.build(codes)
        queries = sample_queries(codes, NUM_QUERIES, seed=5)
        cells[bits] = (codes, flat, mih, queries)
    return cells


def test_dha_vs_mih_crossover(benchmark, mih_workloads):
    """Time each (width, h) cell on both engines; MIH must win a cell."""

    def run():
        measured = {}
        for bits, (codes, flat, mih, queries) in mih_workloads.items():
            for threshold in THRESHOLDS:
                # Exactness first: identical result sets per cell.
                for query in queries[:8]:
                    assert sorted(flat.search(query, threshold)) == sorted(
                        mih.search(query, threshold)
                    ), f"bits={bits} h={threshold} q={query:#x}"
                flat_ms = _per_query_ms(
                    lambda: [flat.search(q, threshold) for q in queries],
                    queries,
                )
                mih_ms = _per_query_ms(
                    lambda: [mih.search(q, threshold) for q in queries],
                    queries,
                )
                batches = _batched(queries)
                flat_batch_ms = _per_query_ms(
                    lambda: [
                        flat.search_batch(b, threshold) for b in batches
                    ],
                    queries,
                )
                mih_batch_ms = _per_query_ms(
                    lambda: [
                        mih.search_batch(b, threshold) for b in batches
                    ],
                    queries,
                )
                mih.search(queries[0], threshold)
                mih_ops = mih.last_search_ops
                flat.search(queries[0], threshold)
                flat_ops = flat.last_search_ops
                measured[(bits, threshold)] = {
                    "flat_ms": flat_ms,
                    "mih_ms": mih_ms,
                    "flat_batch_ms": flat_batch_ms,
                    "mih_batch_ms": mih_batch_ms,
                    "mih_speedup": flat_ms / mih_ms,
                    "mih_batch_speedup": flat_batch_ms / mih_batch_ms,
                    "flat_ops": flat_ops,
                    "mih_ops": mih_ops,
                }
        return measured

    measured = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (bits, threshold), cell in measured.items():
        winner = "MIH" if cell["mih_ms"] < cell["flat_ms"] else "DHA-flat"
        rows.append(
            [
                f"q={bits}",
                f"h={threshold}",
                f"{cell['flat_ms']:.3f}",
                f"{cell['mih_ms']:.3f}",
                f"{cell['mih_speedup']:.2f}x",
                f"{cell['flat_batch_ms']:.3f}",
                f"{cell['mih_batch_ms']:.3f}",
                winner,
            ]
        )
    n = scaled(WORKLOAD_SIZE)
    table = render_table(
        f"Extension: DHA flat kernel vs Multi-Index Hashing "
        f"(NUS-WIDE-like, n={n}, {NUM_QUERIES} queries, "
        f"best of {REPEATS})",
        ["width", "threshold", "flat ms", "mih ms", "mih speedup",
         "flat b32 ms", "mih b32 ms", "winner"],
        rows,
        note=(
            "Identical result sets per cell (asserted).  MIH probes "
            "each substring table at radius floor(h/m) and wins while "
            "the radius stays small; the enumeration (and with it the "
            "candidate union) grows combinatorially with h, which is "
            "where the HA-Index frontier takes over."
        ),
    )
    record("ext_mih_crossover", table)

    payload = {
        "workload": "NUS-WIDE-like",
        "n": n,
        "widths": list(WIDTHS),
        "thresholds": list(THRESHOLDS),
        "num_queries": NUM_QUERIES,
        "repeats": REPEATS,
        "scale": scale(),
        "cells": {
            f"{bits}x{threshold}": cell
            for (bits, threshold), cell in measured.items()
        },
        "mih_wins": [
            f"{bits}x{threshold}"
            for (bits, threshold), cell in measured.items()
            if cell["mih_ms"] < cell["flat_ms"]
        ],
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "BENCH_mih.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # Acceptance only at full scale: tiny CI corpora shrink every cell
    # toward fixed per-query overhead, where timings are noise.
    if scale() >= 1.0:
        assert payload["mih_wins"], (
            "MIH must win at least one (width, threshold) cell; "
            f"measured: "
            f"{ {k: v['mih_speedup'] for k, v in measured.items()} }"
        )


def test_mih_knn_progressive_radius(benchmark, mih_workloads):
    """Native progressive-radius kNN vs the expanding-threshold loop."""
    from repro.core.knn import exact_knn_codes, knn_select

    codes, flat, mih, queries = mih_workloads[WIDTHS[0]]
    k = 10

    def run():
        native_s = _best_of(
            lambda: [mih.knn_search(q, k) for q in queries[:16]]
        )
        loop_s = _best_of(
            lambda: [knn_select(q, flat, k) for q in queries[:16]]
        )
        return native_s, loop_s

    native_s, loop_s = benchmark.pedantic(run, rounds=1, iterations=1)
    # Exactness: the native loop matches the scan oracle byte for byte.
    for query in queries[:8]:
        assert mih.knn_search(query, k) == exact_knn_codes(
            query, codes.codes, codes.ids, k
        )
    table = render_table(
        f"Extension: MIH native kNN vs expanding-threshold loop "
        f"(n={len(codes)}, q={codes.length}, k={k})",
        ["strategy", "ms/query"],
        [
            ["mih progressive radius", f"{native_s / 16 * 1000:.3f}"],
            ["flat expanding threshold", f"{loop_s / 16 * 1000:.3f}"],
        ],
        note=(
            "Both return the k smallest (distance, id) pairs exactly; "
            "the native loop needs no threshold guess — it grows the "
            "per-table radius until k verified neighbors sit inside "
            "the m*(r+1)-1 completeness guarantee."
        ),
    )
    record("ext_mih_knn", table)
    payload_path = RESULTS_DIR / "BENCH_mih.json"
    payload = (
        json.loads(payload_path.read_text())
        if payload_path.exists()
        else {}
    )
    payload["knn"] = {
        "k": k,
        "native_ms": native_s / 16 * 1000.0,
        "loop_ms": loop_s / 16 * 1000.0,
    }
    payload_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
