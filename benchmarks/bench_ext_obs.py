"""Extension bench: observability overhead, disabled and enabled.

The tracing layer promises to be effectively free when no trace is
active (ROADMAP: < 2% on the hot search paths).  The disabled-path cost
is exactly the instrumentation probes a query executes when no span
stack exists: one no-op ``trace_span`` context on the public search
method, one ``tracing()`` check per BFS level, and one early-return
``note_search`` call.  This bench measures

* mean per-query latency on both engines with instrumentation idle
  (the production default) and with a live trace around every query;
* the micro-cost of the no-op probes themselves, from which the
  disabled-path overhead fraction is estimated as
  ``probes_per_query * probe_cost / query_latency``.

Results land in ``benchmarks/results/BENCH_obs.json`` and the text
table quoted by docs/observability.md.
"""

from __future__ import annotations

import time

import pytest

from repro.core.dynamic_ha import DynamicHAIndex
from repro.obs import note_search
from repro.obs.trace import trace, trace_span, tracing

from benchmarks.harness import (
    paper_codes,
    record,
    record_json,
    render_table,
    sample_queries,
    scale,
    scaled,
)

WORKLOAD_SIZE = 30_000
NUM_QUERIES = 64
THRESHOLD = 3
REPEATS = 5
PROBE_ITERATIONS = 200_000


@pytest.fixture(scope="module")
def obs_workload():
    codes = paper_codes("NUS-WIDE", scaled(WORKLOAD_SIZE))
    index = DynamicHAIndex.build(codes)
    flat = index.compile()
    queries = sample_queries(codes, NUM_QUERIES, seed=7)
    return index, flat, queries


def _best_per_query_ms(run, queries, repeats: int = REPEATS) -> float:
    run()
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best / len(queries) * 1000.0


def _probe_costs_ns() -> dict[str, float]:
    """Per-call cost of each idle probe kind, in nanoseconds."""

    def per_call(loop) -> float:
        started = time.perf_counter()
        loop()
        return (time.perf_counter() - started) / PROBE_ITERATIONS * 1e9

    def span_loop():
        for _ in range(PROBE_ITERATIONS):
            with trace_span(
                "h_search", engine="bench", threshold=THRESHOLD
            ):
                pass

    def flag_loop():
        for _ in range(PROBE_ITERATIONS):
            tracing()

    def note_loop():
        for _ in range(PROBE_ITERATIONS):
            note_search("bench", 100)

    return {
        "span": per_call(span_loop),
        "flag": per_call(flag_loop),
        "note": per_call(note_loop),
    }


def test_observability_overhead(benchmark, obs_workload):
    """Acceptance: estimated disabled-path overhead < 2% per engine."""
    index, flat, queries = obs_workload
    assert not tracing(), "bench must start with no active trace"

    def run():
        measured = {}
        for label, engine in (("nodes", index), ("flat", flat)):
            idle_ms = _best_per_query_ms(
                lambda: [engine.search(q, THRESHOLD) for q in queries],
                queries,
            )

            def traced_sweep():
                for q in queries:
                    with trace("bench.query"):
                        engine.search(q, THRESHOLD)

            traced_ms = _best_per_query_ms(traced_sweep, queries)
            measured[label] = {
                "idle_ms": idle_ms,
                "traced_ms": traced_ms,
                "traced_overhead_pct": (traced_ms / idle_ms - 1.0)
                * 100.0,
            }
        return measured

    measured = benchmark.pedantic(run, rounds=1, iterations=1)

    probes = _probe_costs_ns()
    # Idle probes on one query: one no-op span context on the public
    # method, one tracing() flag check per BFS level (depth <=
    # ceil(code_length / window) + 1, ~6 for 32-bit / window 8), and
    # one note_search early return.
    idle_ns_per_query = (
        probes["span"] + 6 * probes["flag"] + probes["note"]
    )
    rows = []
    for label, cell in measured.items():
        idle_overhead_pct = (
            idle_ns_per_query / (cell["idle_ms"] * 1e6) * 100.0
        )
        cell["idle_probe_ns"] = idle_ns_per_query
        cell["idle_overhead_pct"] = idle_overhead_pct
        rows.append(
            [
                label,
                f"{cell['idle_ms']:.3f}",
                f"{idle_overhead_pct:.3f}%",
                f"{cell['traced_ms']:.3f}",
                f"{cell['traced_overhead_pct']:.1f}%",
            ]
        )
    table = render_table(
        f"Extension: observability overhead "
        f"(NUS-WIDE-like, h={THRESHOLD}, {len(queries)} queries, "
        f"best of {REPEATS})",
        ["engine", "idle ms/q", "idle overhead", "traced ms/q",
         "traced overhead"],
        rows,
        note=(
            "Idle overhead is the estimated share of query time spent "
            "in no-op instrumentation probes (span context + flag "
            "checks) when no trace is active; traced overhead is the "
            "full cost of recording per-level spans."
        ),
    )
    record("ext_obs_overhead", table)
    record_json(
        "BENCH_obs",
        {
            "workload": "NUS-WIDE-like",
            "threshold": THRESHOLD,
            "num_queries": len(queries),
            "scale": scale(),
            "probe_ns": probes,
            "engines": measured,
        },
    )
    # The < 2% promise is stated at full workload scale; tiny scaled-
    # down corpora make queries so fast that fixed probe costs loom
    # larger, so the reduced-scale lane only sanity-checks the bound.
    limit = 2.0 if scale() >= 1.0 else 10.0
    for label, cell in measured.items():
        assert cell["idle_overhead_pct"] < limit, (
            f"{label}: idle instrumentation overhead "
            f"{cell['idle_overhead_pct']:.3f}% must stay < {limit}%"
        )
