"""Ablation: what the Gray ordering buys H-Build (DESIGN.md §4).

The Dynamic HA-Index sorts codes by Gray rank before the windowed
FLSSeq extraction, leaning on the clustering property (Proposition 2):
Gray-adjacent codes share more bits, so windows agree on more positions
and parents absorb more of the distance work.  This ablation rebuilds
the same index with plain numeric ordering and compares

* the effective bits captured by internal patterns (sharing quality),
* distance computations per query, and
* query wall-clock.

Expected shape: Gray ordering captures more pattern bits and does fewer
XORs per query than numeric ordering; both remain exact.
"""

from __future__ import annotations

from repro.core.dynamic_ha import DynamicHAIndex

from benchmarks.harness import (
    DEFAULT_THRESHOLD,
    mean_search_ops,
    paper_codes,
    record,
    render_table,
    sample_queries,
    scaled,
    time_queries,
)

WORKLOAD_SIZE = 20_000
DATASETS = ["NUS-WIDE", "Flickr", "DBPedia"]


def _build(codes, gray: bool) -> DynamicHAIndex:
    return DynamicHAIndex.build(codes, gray_order=gray)


def _internal_pattern_bits(index: DynamicHAIndex) -> int:
    return index.stats(include_leaves=False).code_bits


def test_gray_order_improves_sharing(benchmark):
    """Gray ordering captures at least as much pattern sharing."""

    def run():
        codes = paper_codes("NUS-WIDE", scaled(WORKLOAD_SIZE))
        queries = sample_queries(codes, 15)
        gray = _build(codes, True)
        plain = _build(codes, False)
        # Both must stay exact regardless of ordering.
        for query in queries[:5]:
            assert sorted(gray.search(query, DEFAULT_THRESHOLD)) == sorted(
                plain.search(query, DEFAULT_THRESHOLD)
            )
        return (
            mean_search_ops(gray, queries, DEFAULT_THRESHOLD),
            mean_search_ops(plain, queries, DEFAULT_THRESHOLD),
        )

    gray_ops, plain_ops = benchmark.pedantic(run, rounds=1, iterations=1)
    assert gray_ops <= plain_ops * 1.05


def test_ablation_gray_report(benchmark):
    def run() -> str:
        rows = []
        for dataset in DATASETS:
            codes = paper_codes(dataset, scaled(WORKLOAD_SIZE))
            queries = sample_queries(codes, 15)
            for label, gray in (("gray", True), ("numeric", False)):
                index = _build(codes, gray)
                rows.append(
                    [
                        f"{dataset}/{label}",
                        _internal_pattern_bits(index),
                        index.stats(include_leaves=False).nodes,
                        mean_search_ops(
                            index, queries, DEFAULT_THRESHOLD
                        ),
                        time_queries(index, queries, DEFAULT_THRESHOLD),
                    ]
                )
        return render_table(
            f"Ablation: Gray vs. numeric ordering in H-Build "
            f"(n={scaled(WORKLOAD_SIZE)}, h={DEFAULT_THRESHOLD})",
            [
                "dataset/order",
                "pattern bits",
                "internal nodes",
                "XOR ops",
                "query (ms)",
            ],
            rows,
            note=(
                "pattern bits = effective bits captured by internal "
                "FLSSeq nodes (more = better sharing)."
            ),
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ablation_gray", table)
