"""Extension benches: distributed batch select and relational operators.

Not in the paper's evaluation — these cover the library's extensions:

* the batched Hamming-select over MapReduce (Section 1's search-engine
  workload shape), reporting per-batch cost and shuffle;
* the similarity-aware relational operators (the conclusion's future
  work), comparing the semi-join style ``hamming_intersect`` against
  deriving the same answer from a full ``hamming_join``.
"""

from __future__ import annotations

import time


from repro.core.join import hamming_join
from repro.core.relational import hamming_distinct, hamming_intersect
from repro.data.synthetic import nuswide_like
from repro.distributed.hamming_select import mapreduce_hamming_select
from repro.mapreduce.cluster import Cluster
from repro.mapreduce.runtime import MapReduceRuntime
from repro.metrics import format_bytes

from benchmarks.harness import (
    paper_codes,
    record,
    render_table,
    scaled,
)

SELECT_DATASET_SIZE = 2_000
BATCH_SIZES = [4, 16, 64]
RELATIONAL_SIZE = 20_000


def test_distributed_batch_select(benchmark):
    """Batch size sweep: cost per query falls as the batch amortizes
    the partition/build work."""

    def run() -> str:
        dataset = nuswide_like(scaled(SELECT_DATASET_SIZE), seed=41)
        records = list(zip(range(len(dataset)), dataset.vectors))
        rows = []
        for batch in BATCH_SIZES:
            queries = [
                (10_000 + i, dataset.vectors[i]) for i in range(batch)
            ]
            runtime = MapReduceRuntime(Cluster(8))
            started = time.perf_counter()
            report = mapreduce_hamming_select(
                runtime, records, queries, threshold=3,
                num_bits=24, sample_size=200,
            )
            elapsed = time.perf_counter() - started
            total_matches = sum(
                len(ids) for ids in report.matches.values()
            )
            rows.append(
                [
                    batch,
                    report.total_seconds,
                    report.total_seconds / batch * 1000.0,
                    format_bytes(report.shuffle_bytes),
                    total_matches,
                    round(elapsed, 2),
                ]
            )
        return render_table(
            f"Extension: batched Hamming-select over MapReduce "
            f"(n={scaled(SELECT_DATASET_SIZE)}, 8 workers, h=3)",
            [
                "batch",
                "modelled s",
                "ms/query",
                "shuffle",
                "matches",
                "real s",
            ],
            rows,
            note="Per-query cost amortizes: the dataset is hashed, "
                 "partitioned and indexed once per batch.",
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ext_batch_select", table)


def test_relational_operators(benchmark):
    """hamming_intersect vs. deriving the semi-join from a full join."""

    def run() -> str:
        codes = paper_codes("NUS-WIDE", scaled(RELATIONAL_SIZE))
        half = len(codes) // 2
        left = codes.subset(range(half))
        right = codes.subset(range(half, len(codes)))
        rows = []

        started = time.perf_counter()
        direct = hamming_intersect(left, right, 3)
        direct_seconds = time.perf_counter() - started

        started = time.perf_counter()
        joined = {a for a, _ in hamming_join(left, right, 3)}
        join_seconds = time.perf_counter() - started
        assert set(direct) == joined

        started = time.perf_counter()
        canonical = hamming_distinct(left, 3)
        distinct_seconds = time.perf_counter() - started

        rows.append(
            ["intersect (semi-join)", direct_seconds, len(direct)]
        )
        rows.append(["via full join", join_seconds, len(joined)])
        rows.append(
            ["distinct (dedup)", distinct_seconds, len(canonical)]
        )
        return render_table(
            f"Extension: similarity-aware relational operators "
            f"(|R|=|S|={half}, h=3)",
            ["operator", "seconds", "result size"],
            rows,
            note="The semi-join never materializes pairs, so it beats "
                 "the full-join derivation on selective inputs.",
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ext_relational", table)


def test_intersect_faster_than_full_join(benchmark):
    codes = paper_codes("NUS-WIDE", scaled(RELATIONAL_SIZE))
    half = len(codes) // 2
    left = codes.subset(range(half))
    right = codes.subset(range(half, len(codes)))

    def run():
        started = time.perf_counter()
        hamming_intersect(left, right, 3)
        direct = time.perf_counter() - started
        started = time.perf_counter()
        hamming_join(left, right, 3)
        full = time.perf_counter() - started
        return direct, full

    direct, full = benchmark.pedantic(run, rounds=1, iterations=1)
    # The semi-join does strictly less work; allow generous headroom
    # against timer noise.
    assert direct < full * 1.5
