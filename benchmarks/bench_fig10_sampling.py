"""Figure 10: effect of data sampling on the MapReduce Hamming-join.

Regenerates Figure 10 (a) per-phase query cost and (b) precision/recall
of the approximate kNN-join, as the preprocessing sampling percentage
sweeps 5%..30%.

(a) reports the pipeline's phases (hash learning, pivot selection,
HA-Index building, join) plus the partition balance the sampling is
supposed to improve; (b) compares the hash-based approximate kNN-join
against the exact vector-space kNN-join.

Expected shape: hash learning dominates preprocessing and grows with the
sample; partition balance improves (toward 1.0) with more sampling;
precision/recall improve moderately while recall stays low — the
paper's own observation.
"""

from __future__ import annotations


from repro.core.knn import knn_join
from repro.distributed.hamming_join import mapreduce_hamming_join
from repro.distributed.pivots import partition_balance
from repro.hashing.spectral import SpectralHash
from repro.mapreduce.cluster import Cluster
from repro.mapreduce.runtime import MapReduceRuntime
from repro.metrics import exact_knn_join, knn_precision_recall

from benchmarks.harness import (
    paper_dataset,
    record,
    render_table,
    scaled,
)

SAMPLING_PERCENTAGES = [0.05, 0.10, 0.15, 0.20, 0.25, 0.30]
WORKLOAD_SIZE = 1_200
NUM_WORKERS = 8
KNN_K = 10


def _workload():
    dataset = paper_dataset("NUS-WIDE", scaled(WORKLOAD_SIZE))
    return list(zip(range(len(dataset)), dataset.vectors))


def _join_at_sampling(records, fraction: float):
    runtime = MapReduceRuntime(Cluster(NUM_WORKERS))
    sample_size = max(16, int(fraction * len(records)))
    report = mapreduce_hamming_join(
        runtime, records, records, threshold=3,
        option="A", sample_size=sample_size, exclude_self_pairs=True,
    )
    return report


def test_sampling_improves_balance(benchmark):
    """More sampling -> pivot histogram closer to the true distribution."""

    def run():
        records = _workload()
        low = _join_at_sampling(records, 0.02)
        high = _join_at_sampling(records, 0.30)
        return low, high

    low, high = benchmark.pedantic(run, rounds=1, iterations=1)
    assert partition_balance(high.partition_sizes) <= (
        partition_balance(low.partition_sizes) + 0.5
    )


def test_fig10a_report(benchmark):
    def run() -> str:
        records = _workload()
        rows = []
        for fraction in SAMPLING_PERCENTAGES:
            report = _join_at_sampling(records, fraction)
            rows.append(
                [
                    f"{fraction:.0%}",
                    report.learn_hash_seconds,
                    report.pivot_seconds,
                    report.build_seconds,
                    report.join_seconds,
                    partition_balance(report.partition_sizes),
                ]
            )
        return render_table(
            f"Figure 10a (NUS-WIDE-like, n={len(records)}): per-phase "
            "cost (s) vs. sampling percentage",
            [
                "sampling",
                "learn hash",
                "pivots",
                "build index",
                "join",
                "balance",
            ],
            rows,
            note=(
                "balance = max partition / mean (1.0 is perfect). "
                "Expected shape: hash learning grows with the sample; "
                "balance tends toward 1.0."
            ),
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    record("fig10a_phases", table)


def test_fig10b_report(benchmark):
    def run() -> str:
        records = _workload()
        truth = exact_knn_join(records, records, KNN_K)
        vectors = [vector for _, vector in records]
        rows = []
        for fraction in SAMPLING_PERCENTAGES:
            import numpy as np

            sample_size = max(16, int(fraction * len(records)))
            from repro.distributed.sampling import reservoir_sample

            sample = np.asarray(
                reservoir_sample(vectors, sample_size, seed=0)
            )
            hasher = SpectralHash(32).fit(sample)
            codes = hasher.encode(np.asarray(vectors))
            predicted = knn_join(codes, codes, KNN_K)
            precision, recall = knn_precision_recall(predicted, truth)
            rows.append([f"{fraction:.0%}", precision, recall])
        return render_table(
            f"Figure 10b (NUS-WIDE-like, n={len(records)}, k={KNN_K}): "
            "approximate kNN-join quality vs. sampling percentage",
            ["sampling", "precision", "recall"],
            rows,
            note=(
                "Expected shape: moderate improvement with more "
                "sampling; recall stays low (the paper's own "
                "observation)."
            ),
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    record("fig10b_quality", table)
