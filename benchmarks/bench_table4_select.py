"""Table 4: overall Hamming-select comparison.

Regenerates the paper's Table 4 (a/b/c): query time, index update time
and memory for Nested-Loops, MH-4, MH-10, HEngine, Radix-Tree, SHA-Index
and DHA-Index on the three dataset substitutes (32-bit codes, h = 3).

Two kinds of benches:

* per-approach pytest-benchmark microbenchmarks of the select query on
  the NUS-WIDE-like workload (comparable timing under one harness), and
* a report bench per dataset that renders the full three-column table
  into ``benchmarks/results/table4_<dataset>.txt``.

``Nested-Loops (numpy)`` is our vectorized scan (C speed); the paper's
baseline is a plain loop, reported here as ``Nested-Loops (python)`` —
the like-for-like interpreter comparison.  See EXPERIMENTS.md.
"""

from __future__ import annotations

import time

import pytest

from repro.core.select import INDEX_FAMILIES
from repro.metrics import megabytes

from benchmarks.harness import (
    DEFAULT_THRESHOLD,
    SELECT_WORKLOAD_SIZE,
    mean_search_ops,
    paper_codes,
    record,
    render_table,
    sample_queries,
    scaled,
    time_queries,
    time_update,
)

DATASETS = ["NUS-WIDE", "Flickr", "DBPedia"]


def _python_scan_ms(codes, queries, threshold) -> float:
    code_list = list(codes.codes)
    started = time.perf_counter()
    for query in queries:
        [
            i
            for i, code in enumerate(code_list)
            if (code ^ query).bit_count() <= threshold
        ]
    return (time.perf_counter() - started) / len(queries) * 1000.0


@pytest.fixture(scope="module")
def nuswide_workload():
    codes = paper_codes("NUS-WIDE", scaled(SELECT_WORKLOAD_SIZE))
    return codes, sample_queries(codes)


@pytest.mark.parametrize("family", sorted(INDEX_FAMILIES))
def test_select_query_time(benchmark, family, nuswide_workload):
    """Per-family query microbenchmark (NUS-WIDE-like, h = 3)."""
    codes, queries = nuswide_workload
    index = INDEX_FAMILIES[family](codes)
    cycle = iter(range(len(queries)))

    def run():
        nonlocal cycle
        try:
            position = next(cycle)
        except StopIteration:
            cycle = iter(range(len(queries)))
            position = next(cycle)
        return index.search(queries[position], DEFAULT_THRESHOLD)

    benchmark(run)


@pytest.mark.parametrize("dataset", DATASETS)
def test_table4_report(benchmark, dataset):
    """Render the full Table 4 column set for one dataset."""

    def run() -> str:
        codes = paper_codes(dataset, scaled(SELECT_WORKLOAD_SIZE))
        queries = sample_queries(codes)
        rows = []
        python_ms = _python_scan_ms(codes, queries, DEFAULT_THRESHOLD)
        for family in [
            "Nested-Loops",
            "MH-4",
            "MH-10",
            "HEngine",
            "Radix-Tree",
            "SHA-Index",
            "DHA-Index",
        ]:
            index = INDEX_FAMILIES[family](codes)
            query_ms = time_queries(index, queries, DEFAULT_THRESHOLD)
            update_ms = time_update(index, codes)
            xor_ops = mean_search_ops(index, queries, DEFAULT_THRESHOLD)
            memory = megabytes(index.stats().memory_bytes)
            if family == "Nested-Loops":
                rows.append(
                    [
                        "Nested-Loops (python)",
                        python_ms,
                        update_ms,
                        int(xor_ops),
                        "/",
                    ]
                )
                rows.append(
                    [
                        "Nested-Loops (numpy)",
                        query_ms,
                        update_ms,
                        int(xor_ops),
                        "/",
                    ]
                )
                continue
            if family == "DHA-Index":
                internal = megabytes(
                    index.stats(include_leaves=False).memory_bytes
                )
                memory_cell = f"{memory:.2f}/{internal:.2f}"
            else:
                memory_cell = f"{memory:.2f}"
            rows.append(
                [family, query_ms, update_ms, int(xor_ops), memory_cell]
            )
        return render_table(
            f"Table 4 ({dataset}-like, n={len(codes)}, 32-bit codes, h=3)",
            [
                "method",
                "query (ms)",
                "update (ms)",
                "XOR ops",
                "space (MB)",
            ],
            rows,
            note=(
                "XOR ops = distance computations per query, the "
                "structural work the HA-Index saves. DHA space a/b = "
                "leaves kept / internal nodes only (paper's 28/11 "
                "split). Nested-Loops space is '/' as in the paper."
            ),
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    record(f"table4_{dataset.lower().replace('-', '')}", table)
