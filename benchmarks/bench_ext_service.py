"""Extension bench: the online query service vs. the naive serving loop.

The paper stops at one-shot pipelines; this bench measures what the
serving layer adds on top of the same Dynamic HA-Index.  Two tables:

* throughput of the naive one-query-at-a-time loop vs. the batched
  multi-worker service, on a Zipf-skewed stream (search-engine query
  logs are Zipfian) — the service must win by >= 2x, which it earns
  through micro-batch dedup and the epoch-keyed result cache, not
  thread parallelism (the GIL serializes traversal anyway);
* cache hit rate and in-batch dedup per workload shape, including a
  churn row where H-Insert/H-Delete pairs bump the epoch mid-stream
  and force recomputation.
"""

from __future__ import annotations

import time

import pytest

from repro.core.dynamic_ha import DynamicHAIndex
from repro.data.workloads import (
    member_queries,
    near_miss_queries,
    zipf_queries,
)
from repro.service import HammingQueryService

from benchmarks.harness import (
    DEFAULT_THRESHOLD,
    paper_codes,
    record,
    render_table,
    scaled,
)

WORKLOAD_SIZE = 30_000
NUM_QUERIES = 2_000
WORKER_SWEEP = (1, 2, 4)
CACHE_CAPACITY = 4096
MAX_BATCH = 32


@pytest.fixture(scope="module")
def served_workload():
    codes = paper_codes("NUS-WIDE", scaled(WORKLOAD_SIZE))
    index = DynamicHAIndex.build(codes)
    queries = zipf_queries(codes, scaled(NUM_QUERIES), seed=2)
    return codes, index, queries


def _naive_qps(index, queries) -> float:
    started = time.perf_counter()
    for query in queries:
        index.search(query, DEFAULT_THRESHOLD)
    return len(queries) / (time.perf_counter() - started)


def _served_qps(index, queries, workers, updates=0, cache=CACHE_CAPACITY):
    """(queries/s, ServiceStats) of one service run over ``queries``.

    The service reads the shared prebuilt index; runs with ``updates``
    interleave that many H-Insert/H-Delete pairs, so they snapshot the
    index first to leave the shared structure untouched.
    """
    served_index = index.snapshot() if updates else index
    service = HammingQueryService(
        served_index,
        workers=workers,
        max_batch=MAX_BATCH,
        queue_limit=len(queries) + 2 * updates + 8,
        cache_capacity=cache,
    )
    update_every = max(1, len(queries) // (updates + 1)) if updates else 0
    started = time.perf_counter()
    with service:
        tickets = []
        for position, query in enumerate(queries):
            tickets.append(
                service.submit("select", query, DEFAULT_THRESHOLD)
            )
            if update_every and position % update_every == 0:
                service.insert(query, 1_000_000 + position)
                service.delete(query, 1_000_000 + position)
        for ticket in tickets:
            ticket.result()
        elapsed = time.perf_counter() - started
        stats = service.stats()
    return len(queries) / elapsed, stats


def test_batched_service_beats_naive_loop(benchmark, served_workload):
    """Acceptance: >= 2x throughput on the Zipf-skewed workload."""
    codes, index, queries = served_workload

    def run():
        naive = _naive_qps(index, queries)
        rows = [["naive loop", f"{naive:,.0f}", "1.00", "-", "-"]]
        best = 0.0
        for workers in WORKER_SWEEP:
            qps, stats = _served_qps(index, queries, workers)
            best = max(best, qps)
            rows.append(
                [
                    f"service w={workers}",
                    f"{qps:,.0f}",
                    f"{qps / naive:.2f}",
                    f"{stats.cache.hit_rate * 100.0:.1f}%",
                    f"{stats.mean_batch_size:.1f}",
                ]
            )
        table = render_table(
            f"Extension: online serving throughput "
            f"(NUS-WIDE-like, n={len(codes)}, "
            f"{len(queries)} zipf queries, h={DEFAULT_THRESHOLD})",
            ["serving path", "queries/s", "speedup", "hit rate", "batch"],
            rows,
            note=(
                "Speedup comes from micro-batch dedup plus the "
                "epoch-keyed LRU cache; traversal itself is serialized "
                "(GIL), so worker count mostly affects batching."
            ),
        )
        return naive, best, table

    naive, best, table = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ext_service_throughput", table)
    assert best >= 2.0 * naive, (
        f"batched serving {best:,.0f} q/s must be >= 2x naive "
        f"{naive:,.0f} q/s"
    )


def test_cache_hit_rate_by_workload(benchmark, served_workload):
    """Acceptance: > 30% hit rate on the skewed (zipf) workload."""
    codes, index, _ = served_workload
    count = scaled(NUM_QUERIES)
    shapes = {
        "zipf": zipf_queries(codes, count, seed=5),
        "member": member_queries(codes, count, seed=6),
        "near-miss": near_miss_queries(codes, count, seed=7),
    }

    def run():
        rows = []
        rates = {}
        for shape, queries in shapes.items():
            qps, stats = _served_qps(index, queries, workers=4)
            rates[shape] = stats.cache.hit_rate
            rows.append(
                [
                    shape,
                    f"{qps:,.0f}",
                    f"{stats.cache.hit_rate * 100.0:.1f}%",
                    stats.dedup_saved,
                    stats.executed,
                ]
            )
        # Epoch churn: mutations invalidate the hot set repeatedly.
        qps, stats = _served_qps(
            index, shapes["zipf"], workers=4, updates=32
        )
        rows.append(
            [
                "zipf+updates",
                f"{qps:,.0f}",
                f"{stats.cache.hit_rate * 100.0:.1f}%",
                stats.dedup_saved,
                stats.executed,
            ]
        )
        table = render_table(
            f"Extension: cache effectiveness by workload shape "
            f"(n={len(codes)}, {count} queries, h={DEFAULT_THRESHOLD}, "
            f"cache {CACHE_CAPACITY})",
            ["workload", "queries/s", "hit rate", "dedup", "traversals"],
            rows,
            note=(
                "Zipf streams concentrate on a hot set the cache "
                "absorbs; near-miss streams (unique perturbed codes) "
                "are the cache's worst case.  The updates row shows "
                "epoch churn re-priming the cache after mutations."
            ),
        )
        return rates, table

    rates, table = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ext_service_cache", table)
    assert rates["zipf"] > 0.30, (
        f"zipf hit rate {rates['zipf']:.2%} must exceed 30%"
    )
