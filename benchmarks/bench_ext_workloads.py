"""Extension bench: query-shape sensitivity of the select indexes.

The paper queries with dataset members only; production query streams
mix hot repeats, near misses and novel probes.  This bench sweeps the
workload shapes of ``repro.data.workloads`` over the three headline
indexes, reporting wall-clock and distance computations per query.

Expected shape: novel (far-from-data) queries are the HA-Index's best
case — upper-level patterns disqualify whole subtrees immediately —
while scan costs are workload-independent by construction.
"""

from __future__ import annotations

import pytest

from repro.core.select import INDEX_FAMILIES
from repro.data.workloads import (
    member_queries,
    near_miss_queries,
    novel_queries,
    zipf_queries,
)

from benchmarks.harness import (
    DEFAULT_THRESHOLD,
    mean_search_ops,
    paper_codes,
    record,
    render_table,
    scaled,
    time_queries,
)

WORKLOAD_SIZE = 20_000
APPROACHES = ["Nested-Loops", "MH-10", "DHA-Index"]
NUM_QUERIES = 20


def _workload_batches(codes):
    return {
        "member": member_queries(codes, NUM_QUERIES, seed=1),
        "zipf": zipf_queries(codes, NUM_QUERIES, seed=2),
        "near-miss": near_miss_queries(codes, NUM_QUERIES, seed=3),
        "novel": novel_queries(codes.length, NUM_QUERIES, seed=4),
    }


@pytest.fixture(scope="module")
def shaped_workload():
    codes = paper_codes("NUS-WIDE", scaled(WORKLOAD_SIZE))
    indexes = {name: INDEX_FAMILIES[name](codes) for name in APPROACHES}
    return codes, indexes


@pytest.mark.parametrize("shape", ["member", "novel"])
def test_dha_query_by_shape(benchmark, shape, shaped_workload):
    codes, indexes = shaped_workload
    queries = _workload_batches(codes)[shape]
    index = indexes["DHA-Index"]
    benchmark(
        lambda: [index.search(q, DEFAULT_THRESHOLD) for q in queries]
    )


def test_novel_queries_prune_hardest(benchmark, shaped_workload):
    """DHA does the least structural work on far-from-data queries."""

    def run():
        codes, indexes = shaped_workload
        batches = _workload_batches(codes)
        index = indexes["DHA-Index"]
        return (
            mean_search_ops(index, batches["member"], DEFAULT_THRESHOLD),
            mean_search_ops(index, batches["novel"], DEFAULT_THRESHOLD),
        )

    member_ops, novel_ops = benchmark.pedantic(run, rounds=1, iterations=1)
    assert novel_ops < member_ops


def test_workload_shape_report(benchmark, shaped_workload):
    def run() -> str:
        codes, indexes = shaped_workload
        batches = _workload_batches(codes)
        rows = []
        for shape, queries in batches.items():
            for name in APPROACHES:
                index = indexes[name]
                rows.append(
                    [
                        f"{shape}/{name}",
                        time_queries(index, queries, DEFAULT_THRESHOLD),
                        mean_search_ops(
                            index, queries, DEFAULT_THRESHOLD
                        ),
                    ]
                )
        return render_table(
            f"Extension: query-shape sensitivity "
            f"(NUS-WIDE-like, n={len(codes)}, h={DEFAULT_THRESHOLD})",
            ["workload/index", "query (ms)", "XOR ops"],
            rows,
            note=(
                "Novel queries are the HA-Index's best case: top-level "
                "patterns disqualify whole subtrees immediately."
            ),
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ext_workloads", table)
