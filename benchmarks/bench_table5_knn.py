"""Table 5: approximate kNN-select comparison.

Regenerates the paper's Table 5: query time and index build time for
E2LSH, LSB-Tree(25), SHA-Index(32/64) and DHA-Index(32/64), k = 50.
The paper runs 300 k tuples; the default here is 30 k (see
REPRO_BENCH_SCALE).

The LSH configuration uses few projections per table, reproducing the
high-collision regime the paper measured on real (clustered, non-
uniform) data — the stated reason "the LSH approach assumes uniformity
in the distribution of the underlying data while real datasets are not
uniform".

Expected shape: HA-Index variants are fastest by a wide margin and build
quickly; LSB-Tree queries beat LSH but its 25-tree forest is by far the
most expensive build (the paper reports hours).
"""

from __future__ import annotations

import pytest

from repro.baselines.lsb_tree import LSBTreeIndex
from repro.baselines.lsh import E2LSHIndex
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.knn import knn_select
from repro.core.static_ha import StaticHAIndex
from repro.hashing.spectral import SpectralHash

from benchmarks.harness import (
    DEFAULT_K,
    KNN_WORKLOAD_SIZE,
    paper_codes,
    paper_dataset,
    record,
    render_table,
    sample_queries,
    scaled,
    time_call,
)

DATASETS = ["NUS-WIDE", "Flickr", "DBPedia"]

#: Few projections per table -> giant buckets on clustered data.
LSH_PROJECTIONS = 4
NUM_QUERIES = 10


def _time_knn_queries(query_fn, queries) -> float:
    import time

    started = time.perf_counter()
    for query in queries:
        query_fn(query)
    return (time.perf_counter() - started) / len(queries) * 1000.0


@pytest.fixture(scope="module")
def nuswide_vectors():
    return paper_dataset("NUS-WIDE", scaled(KNN_WORKLOAD_SIZE)).vectors


def test_knn_dha_index(benchmark, nuswide_vectors):
    codes = paper_codes("NUS-WIDE", scaled(KNN_WORKLOAD_SIZE))
    index = DynamicHAIndex.build(codes)
    queries = sample_queries(codes, NUM_QUERIES)
    benchmark(
        lambda: [knn_select(q, index, DEFAULT_K) for q in queries]
    )


def test_knn_lsh(benchmark, nuswide_vectors):
    index = E2LSHIndex(
        num_tables=20, projections_per_table=LSH_PROJECTIONS, seed=1
    ).fit(nuswide_vectors)
    probes = nuswide_vectors[:NUM_QUERIES]
    benchmark.pedantic(
        lambda: [index.query(p, DEFAULT_K) for p in probes],
        rounds=3,
        iterations=1,
    )


def test_knn_lsb_tree(benchmark, nuswide_vectors):
    index = LSBTreeIndex(num_trees=25, seed=1).fit(nuswide_vectors)
    probes = nuswide_vectors[:NUM_QUERIES]
    benchmark.pedantic(
        lambda: [index.query(p, DEFAULT_K) for p in probes],
        rounds=3,
        iterations=1,
    )


@pytest.mark.parametrize("dataset", DATASETS)
def test_table5_report(benchmark, dataset):
    def run() -> str:
        vectors = paper_dataset(
            dataset, scaled(KNN_WORKLOAD_SIZE)
        ).vectors
        probes = vectors[:NUM_QUERIES]
        rows = []

        build_seconds, lsh = time_call(
            lambda: E2LSHIndex(
                num_tables=20,
                projections_per_table=LSH_PROJECTIONS,
                seed=1,
            ).fit(vectors)
        )
        query_ms = _time_knn_queries(
            lambda p: lsh.query(p, DEFAULT_K), probes
        )
        rows.append(["LSH", query_ms, build_seconds])

        build_seconds, lsb = time_call(
            lambda: LSBTreeIndex(num_trees=25, seed=1).fit(vectors)
        )
        query_ms = _time_knn_queries(
            lambda p: lsb.query(p, DEFAULT_K), probes
        )
        rows.append(["LSB-Tree(25)", query_ms, build_seconds])

        for bits in (32, 64):
            hasher = SpectralHash(bits)
            hash_seconds, codes = time_call(
                lambda h=hasher: paper_dataset(
                    dataset, scaled(KNN_WORKLOAD_SIZE)
                ).encode(h.fit(vectors), cache=False)
            )
            code_queries = sample_queries(codes, NUM_QUERIES)
            for label, builder in (
                ("SHA-Index", StaticHAIndex.build),
                ("DHA-Index", DynamicHAIndex.build),
            ):
                build_seconds, index = time_call(lambda b=builder, c=codes: b(c))
                query_ms = _time_knn_queries(
                    lambda q: knn_select(q, index, DEFAULT_K),
                    code_queries,
                )
                rows.append(
                    [
                        f"{label}({bits})",
                        query_ms,
                        hash_seconds + build_seconds,
                    ]
                )
        return render_table(
            f"Table 5 ({dataset}-like, n={scaled(KNN_WORKLOAD_SIZE)}, "
            f"k={DEFAULT_K}): approximate kNN-select",
            ["algorithm", "query (ms)", "index build (s)"],
            rows,
            note=(
                "HA-Index build time includes learning the spectral hash. "
                "Expected shape: HA-Index fastest; LSB-Tree build is the "
                "most expensive."
            ),
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    record(f"table5_{dataset.lower().replace('-', '')}", table)
