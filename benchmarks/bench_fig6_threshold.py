"""Figure 6: effect of the Hamming-distance threshold on Hamming-select.

Regenerates Figure 6 (a/b/c): average query time as the threshold h
sweeps 1..6 on each dataset substitute, for all seven approaches.  The
paper's headline shape: the HA-Index curves grow slowly because search
terminates early in upper index levels, while MultiHashTable and HEngine
degrade sharply once h forces wider probe enumerations.
"""

from __future__ import annotations

import pytest

from repro.core.select import INDEX_FAMILIES

from benchmarks.harness import (
    SELECT_WORKLOAD_SIZE,
    paper_codes,
    record,
    render_table,
    sample_queries,
    scaled,
    time_queries,
)

DATASETS = ["NUS-WIDE", "Flickr", "DBPedia"]
THRESHOLDS = [1, 2, 3, 4, 5, 6]
APPROACHES = [
    "Nested-Loops",
    "MH-4",
    "MH-10",
    "HEngine",
    "Radix-Tree",
    "SHA-Index",
    "DHA-Index",
]


@pytest.fixture(scope="module")
def nuswide_indexes():
    codes = paper_codes("NUS-WIDE", scaled(SELECT_WORKLOAD_SIZE))
    queries = sample_queries(codes, 10)
    indexes = {
        name: INDEX_FAMILIES[name](codes) for name in APPROACHES
    }
    return indexes, queries


@pytest.mark.parametrize("threshold", THRESHOLDS)
@pytest.mark.parametrize("family", ["DHA-Index", "MH-10", "HEngine"])
def test_threshold_sensitivity(
    benchmark, family, threshold, nuswide_indexes
):
    """Microbenchmark of the h-sensitivity for the three key curves."""
    indexes, queries = nuswide_indexes
    index = indexes[family]
    benchmark(
        lambda: [index.search(query, threshold) for query in queries]
    )


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig6_report(benchmark, dataset):
    """Render the full h-sweep for one dataset."""

    def run() -> str:
        codes = paper_codes(dataset, scaled(SELECT_WORKLOAD_SIZE))
        queries = sample_queries(codes, 10)
        indexes = {
            name: INDEX_FAMILIES[name](codes) for name in APPROACHES
        }
        rows = []
        for threshold in THRESHOLDS:
            row: list[object] = [threshold]
            for name in APPROACHES:
                row.append(
                    time_queries(indexes[name], queries, threshold)
                )
            rows.append(row)
        return render_table(
            f"Figure 6 ({dataset}-like, n={len(codes)}): query time (ms) "
            "vs. Hamming threshold",
            ["h"] + APPROACHES,
            rows,
            note=(
                "Expected shape: HA-Index columns grow slowly with h; "
                "MH/HEngine jump when h crosses a probe-radius boundary."
            ),
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    record(f"fig6_{dataset.lower().replace('-', '')}", table)
