"""Setuptools shim; metadata lives in pyproject.toml.

Kept so the package installs in environments without the `wheel` module
(`pip install -e .` needs it to build editable wheels offline):
``python setup.py develop`` works with bare setuptools.
"""

from setuptools import setup

setup()
